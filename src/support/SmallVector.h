//===- support/SmallVector.h - Inline-storage vector ------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector with inline storage for the common small case. The per-function
/// cold path builds many short-lived sets (assigned locals, ghost
/// parameters) whose typical cardinality is a handful; keeping them in the
/// object itself avoids one heap round trip per function per compilation.
///
/// Deliberately minimal: trivially copyable element types only (ids,
/// pointers, PODs), no erase/insert in the middle. That restriction keeps
/// the grow path a memcpy and the destructor a single conditional free.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_SUPPORT_SMALLVECTOR_H
#define QCC_SUPPORT_SMALLVECTOR_H

#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>

namespace qcc {
namespace support {

template <typename T, unsigned InlineN> class SmallVector {
  static_assert(std::is_trivially_copyable<T>::value,
                "SmallVector holds trivially copyable elements only");
  static_assert(InlineN > 0, "inline capacity must be positive");

public:
  SmallVector() = default;
  SmallVector(const SmallVector &O) { append(O.Data, O.Size); }
  SmallVector(SmallVector &&O) noexcept {
    if (O.onHeap()) {
      Data = O.Data;
      Cap = O.Cap;
      Size = O.Size;
      O.Data = reinterpret_cast<T *>(O.Inline);
      O.Cap = InlineN;
      O.Size = 0;
    } else {
      append(O.Data, O.Size);
      O.Size = 0;
    }
  }
  SmallVector &operator=(const SmallVector &O) {
    if (this != &O) {
      Size = 0;
      append(O.Data, O.Size);
    }
    return *this;
  }
  SmallVector &operator=(SmallVector &&O) noexcept {
    if (this != &O) {
      if (onHeap())
        std::free(Data);
      Data = reinterpret_cast<T *>(Inline);
      Cap = InlineN;
      Size = 0;
      if (O.onHeap()) {
        Data = O.Data;
        Cap = O.Cap;
        Size = O.Size;
        O.Data = reinterpret_cast<T *>(O.Inline);
        O.Cap = InlineN;
        O.Size = 0;
      } else {
        append(O.Data, O.Size);
        O.Size = 0;
      }
    }
    return *this;
  }
  ~SmallVector() {
    if (onHeap())
      std::free(Data);
  }

  void push_back(const T &V) {
    if (Size == Cap)
      grow(Cap * 2);
    Data[Size++] = V;
  }

  void append(const T *Src, size_t N) {
    if (Size + N > Cap) {
      size_t NewCap = Cap;
      while (NewCap < Size + N)
        NewCap *= 2;
      grow(NewCap);
    }
    if (N)
      std::memcpy(Data + Size, Src, N * sizeof(T));
    Size += N;
  }

  void clear() { Size = 0; }
  void pop_back() { --Size; }
  void resize(size_t N) {
    if (N > Cap) {
      size_t NewCap = Cap;
      while (NewCap < N)
        NewCap *= 2;
      grow(NewCap);
    }
    if (N > Size)
      std::memset(reinterpret_cast<char *>(Data + Size), 0,
                  (N - Size) * sizeof(T));
    Size = N;
  }

  T *begin() { return Data; }
  T *end() { return Data + Size; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Size; }
  T &operator[](size_t I) { return Data[I]; }
  const T &operator[](size_t I) const { return Data[I]; }
  T &back() { return Data[Size - 1]; }
  const T &back() const { return Data[Size - 1]; }
  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }

private:
  bool onHeap() const { return Data != reinterpret_cast<const T *>(Inline); }

  void grow(size_t NewCap) {
    T *NewData = static_cast<T *>(std::malloc(NewCap * sizeof(T)));
    if (!NewData)
      throw std::bad_alloc();
    if (Size)
      std::memcpy(NewData, Data, Size * sizeof(T));
    if (onHeap())
      std::free(Data);
    Data = NewData;
    Cap = NewCap;
  }

  alignas(T) char Inline[InlineN * sizeof(T)];
  T *Data = reinterpret_cast<T *>(Inline);
  size_t Cap = InlineN;
  size_t Size = 0;
};

} // namespace support
} // namespace qcc

#endif // QCC_SUPPORT_SMALLVECTOR_H
