//===- support/SourceLoc.h - Source locations -------------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal 1-based line/column source position used by the frontend and
/// the diagnostics engine.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_SUPPORT_SOURCELOC_H
#define QCC_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace qcc {

/// A position in a source buffer. Line and column are 1-based; the value
/// {0, 0} denotes "unknown location".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Column) : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &O) const {
    return Line == O.Line && Column == O.Column;
  }

  /// Renders as "line:column" or "<unknown>".
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

} // namespace qcc

#endif // QCC_SUPPORT_SOURCELOC_H
