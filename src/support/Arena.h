//===- support/Arena.h - Chunked bump allocator for hot paths -------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked bump allocator for the per-job re-verify hot path. The
/// incremental engine allocates scratch structures (key buffers, hash
/// work lists, serialized record staging) out of an Arena and resets it
/// between jobs, so a warm edit does no unbounded heap churn: after the
/// first job on a thread the arena's chunks are hot and reused in place.
///
/// Not thread-safe; each user owns its arena. The process-wide
/// high-water mark (the largest total footprint any arena reached) is a
/// relaxed atomic so the metrics layer can report it from any thread.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_SUPPORT_ARENA_H
#define QCC_SUPPORT_ARENA_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <vector>

namespace qcc {

namespace detail {
/// Largest total arena footprint (bytes) observed process-wide.
inline std::atomic<uint64_t> ArenaHighWater{0};
} // namespace detail

/// Returns the process-wide arena high-water mark in bytes.
inline uint64_t arenaHighWater() {
  return detail::ArenaHighWater.load(std::memory_order_relaxed);
}

class Arena {
public:
  static constexpr size_t DefaultChunkBytes = 64 * 1024;

  explicit Arena(size_t ChunkBytes = DefaultChunkBytes)
      : ChunkBytes(ChunkBytes) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates Size bytes aligned to Align. Never returns null; falls
  /// back to a dedicated chunk for oversized requests.
  void *alloc(size_t Size, size_t Align = alignof(std::max_align_t)) {
    if (Size == 0)
      Size = 1;
    if (Cur) {
      uintptr_t P = reinterpret_cast<uintptr_t>(Cur->Data.get()) + Cur->Used;
      uintptr_t Aligned = (P + Align - 1) & ~(uintptr_t(Align) - 1);
      size_t Need = (Aligned - P) + Size;
      if (Cur->Used + Need <= Cur->Cap) {
        Cur->Used += Need;
        return reinterpret_cast<void *>(Aligned);
      }
    }
    return allocSlow(Size, Align);
  }

  /// Typed allocation of N default-constructible objects. Only for
  /// trivially-destructible T: reset() never runs destructors.
  template <typename T> T *allocArray(size_t N) {
    static_assert(std::is_trivially_destructible<T>::value,
                  "arena memory is reclaimed without running destructors");
    T *P = static_cast<T *>(alloc(N * sizeof(T), alignof(T)));
    for (size_t I = 0; I < N; ++I)
      new (P + I) T();
    return P;
  }

  /// Copies a byte span into the arena.
  void *copy(const void *Src, size_t Size,
             size_t Align = alignof(std::max_align_t)) {
    void *Dst = alloc(Size, Align);
    std::memcpy(Dst, Src, Size);
    return Dst;
  }

  /// Rewinds all chunks without releasing them: the next job reuses the
  /// same memory. Oversized one-off chunks (rare) are released so a
  /// single huge job does not pin its footprint forever.
  void reset() {
    size_t Kept = 0;
    for (size_t I = 0; I < Chunks.size(); ++I) {
      Chunks[I].Used = 0;
      if (Chunks[I].Cap <= ChunkBytes)
        Chunks[Kept++] = std::move(Chunks[I]);
      else
        Footprint -= Chunks[I].Cap;
    }
    Chunks.resize(Kept);
    Cur = Chunks.empty() ? nullptr : &Chunks.front();
    NextChunk = 0;
  }

  /// Total bytes currently reserved by this arena (all chunks).
  size_t footprint() const { return Footprint; }

  /// Bytes handed out since the last reset.
  size_t used() const {
    size_t U = 0;
    for (const auto &C : Chunks)
      U += C.Used;
    return U;
  }

private:
  struct Chunk {
    std::unique_ptr<char[]> Data;
    size_t Cap = 0;
    size_t Used = 0;
  };

  void *allocSlow(size_t Size, size_t Align) {
    // After a reset, walk previously-reserved chunks before growing.
    while (NextChunk < Chunks.size()) {
      Chunk &C = Chunks[NextChunk];
      if (C.Used == 0 && C.Cap >= Size + Align) {
        Cur = &C;
        ++NextChunk;
        return alloc(Size, Align);
      }
      ++NextChunk;
    }
    size_t Cap = ChunkBytes;
    if (Size + Align > Cap)
      Cap = Size + Align;
    Chunk C;
    C.Data = std::make_unique<char[]>(Cap);
    C.Cap = Cap;
    Footprint += Cap;
    Chunks.push_back(std::move(C));
    NextChunk = Chunks.size();
    Cur = &Chunks.back();
    // Racing arenas may interleave; max-CAS keeps the mark monotone.
    uint64_t Mark = Footprint;
    uint64_t Prev = detail::ArenaHighWater.load(std::memory_order_relaxed);
    while (Prev < Mark && !detail::ArenaHighWater.compare_exchange_weak(
                              Prev, Mark, std::memory_order_relaxed))
      ;
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur->Data.get());
    uintptr_t Aligned = (P + Align - 1) & ~(uintptr_t(Align) - 1);
    Cur->Used = (Aligned - P) + Size;
    return reinterpret_cast<void *>(Aligned);
  }

  size_t ChunkBytes;
  size_t Footprint = 0;
  size_t NextChunk = 0;
  std::vector<Chunk> Chunks;
  Chunk *Cur = nullptr;
};

} // namespace qcc

#endif // QCC_SUPPORT_ARENA_H
