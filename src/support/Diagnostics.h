//===- support/Diagnostics.h - Diagnostic collection ------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A diagnostics engine that collects errors and warnings produced while
/// parsing, type checking, analyzing, or compiling a program. Library code
/// never prints or aborts on user-input errors; it reports here and lets
/// the driver decide.
///
/// Thread-safety contract (relied on by the batch engine): the engine is
/// strictly instance-scoped — neither it nor any qcc library it serves
/// keeps global or static *mutable* state (static locals are const and
/// C++11 magic-statics cover their initialization). Distinct engines may
/// therefore be driven from distinct threads with no synchronization: one
/// engine per concurrent compilation. A single engine shared across
/// threads requires external locking; the batch engine instead gives every
/// job its own engine and merges afterwards via \c append.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_SUPPORT_DIAGNOSTICS_H
#define QCC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace qcc {

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported issue: severity, position, and message text.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "error: 3:7: message" in the lowercase-first style.
  std::string str() const;
};

/// Accumulates diagnostics for one compilation or analysis run.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic on its own line.
  std::string str() const;

  /// Merges every diagnostic of \p Other into this engine, in order.
  /// The deterministic join for per-thread engines after a parallel run.
  void append(const DiagnosticEngine &Other) {
    Diags.insert(Diags.end(), Other.Diags.begin(), Other.Diags.end());
    NumErrors += Other.NumErrors;
  }

  /// Drops all collected diagnostics.
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace qcc

#endif // QCC_SUPPORT_DIAGNOSTICS_H
