//===- support/Supervision.cpp - Budgets and cooperative cancel -----------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "support/Supervision.h"

using namespace qcc;

const char *qcc::stopCauseName(StopCause C) {
  switch (C) {
  case StopCause::None:
    return "none";
  case StopCause::FuelExhausted:
    return "fuel-exhausted";
  case StopCause::MemoryBudget:
    return "memory-budget";
  case StopCause::DeadlineExpired:
    return "deadline-expired";
  case StopCause::Cancelled:
    return "cancelled";
  }
  return "?";
}
