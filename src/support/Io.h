//===- support/Io.h - Full-transfer POSIX I/O helpers -----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Full-transfer wrappers over the POSIX read/write/send calls. Every
/// caller that moves bytes to or from a file descriptor — the persistent
/// store's entry files, the qccd daemon's socket frames — goes through
/// these, so a signal delivered mid-transfer (EINTR) or a short transfer
/// (pipes, sockets, disk pressure) can never silently truncate a payload:
/// the store's crash-safety argument and the daemon's framing both assume
/// "either all the bytes moved, or the operation reported failure".
///
/// Socket writes use send(MSG_NOSIGNAL), so a peer that disconnects
/// mid-reply surfaces as EPIPE instead of killing the process.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_SUPPORT_IO_H
#define QCC_SUPPORT_IO_H

#include <cstddef>
#include <string>

namespace qcc {
namespace io {

/// Writes all \p Len bytes to \p Fd, retrying on EINTR and short writes.
/// True iff every byte was written.
bool writeFull(int Fd, const void *Data, size_t Len);

/// Reads until \p Len bytes arrived or the stream ended, retrying on
/// EINTR and short reads. Returns the byte count actually read (< Len
/// means EOF before the transfer completed), or -1 on a real error.
long readFull(int Fd, void *Data, size_t Len);

/// send()-based variant of writeFull for sockets: MSG_NOSIGNAL turns a
/// vanished peer into an EPIPE error instead of a fatal SIGPIPE.
bool sendFull(int Fd, const void *Data, size_t Len);

/// fsync, retrying on EINTR. True on success.
bool fsyncFull(int Fd);

/// Reads the whole regular file at \p Path into \p Out through readFull
/// (EINTR-safe, unlike an ifstream, whose underlying read can fail a
/// stream mid-slurp). True iff the file opened and was read to EOF.
bool readFile(const std::string &Path, std::string &Out);

} // namespace io
} // namespace qcc

#endif // QCC_SUPPORT_IO_H
