//===- support/Numeric.h - Strict CLI numeric parsing -----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one numeric-operand parser every qcc/qccd command line shares.
/// Bare strtoull is a trap for option parsing: it skips leading
/// whitespace, accepts a sign (so "--jobs -1" silently becomes 2^64-1),
/// and reports trailing garbage only through the end pointer. This
/// parser is strict: the operand must be exactly one non-negative
/// integer — decimal, or hex/octal with the usual 0x/0 prefixes — with
/// no sign, no whitespace, no trailing characters, and no overflow of
/// either uint64_t or the caller's ceiling.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_SUPPORT_NUMERIC_H
#define QCC_SUPPORT_NUMERIC_H

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <optional>

namespace qcc {

/// Parses \p Text as one complete unsigned integer in [0, Max].
/// Rejects (nullopt): empty strings, any sign ('-' would wrap, '+' is
/// noise), leading whitespace (which strtoull would skip, re-admitting a
/// sign behind it), trailing characters, and values exceeding uint64_t
/// (ERANGE) or \p Max.
inline std::optional<uint64_t> parseUnsigned(const char *Text,
                                             uint64_t Max = UINT64_MAX) {
  if (!Text || Text[0] < '0' || Text[0] > '9')
    return std::nullopt; // empty, sign, whitespace, or non-digit lead
  char *End = nullptr;
  errno = 0;
  unsigned long long V = std::strtoull(Text, &End, 0);
  if (errno == ERANGE || End == Text || *End != '\0' || V > Max)
    return std::nullopt;
  return static_cast<uint64_t>(V);
}

} // namespace qcc

#endif // QCC_SUPPORT_NUMERIC_H
