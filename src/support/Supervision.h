//===- support/Supervision.h - Budgets and cooperative cancel ---*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The supervision layer: every verification job the engine runs is
/// governed by a Supervisor — a cooperative cancellation token carrying a
/// wall-clock deadline and a soft memory budget. The verifier's own pitch
/// is that a certified bound holds on *every* execution; supervision is
/// the same discipline applied to the verifier itself: no input, however
/// adversarial, may stall a batch for its full 50M-step fuel per level or
/// blow up RSS unboundedly.
///
/// Semantics (DESIGN.md section 5d): cancellation is *verdict-withholding*,
/// never verdict-changing. Every consumer — the five interpreters, the
/// proof checker, the analyzer, the driver — polls the token between
/// steps and, when a stop is requested, abandons the computation with a
/// distinguished StopCause instead of a verdict. A cancelled job never
/// reports "verified" and never reports "refuted"; it reports "the budget
/// ran out", which the batch engine maps to retry/quarantine, not to a
/// verification failure.
///
/// The token is built from atomics only, so
///   * polling it from an interpreter hot loop is one relaxed load
///     (deadlines are enforced asynchronously by batch::Watchdog, not by
///     reading the clock in the loop), and
///   * cancel() is async-signal-safe: the SIGINT handler of `qcc --batch`
///     / `qcc --fuzz` cancels the interrupt token directly.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_SUPPORT_SUPERVISION_H
#define QCC_SUPPORT_SUPERVISION_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace qcc {

/// Why a supervised computation was stopped short of a verdict. Ordered
/// by severity; mergeCause keeps the strongest.
enum class StopCause : uint8_t {
  None = 0,        ///< Running (or ran) to completion.
  FuelExhausted,   ///< The step budget (interpreter fuel) ran out.
  MemoryBudget,    ///< The soft allocation budget was exceeded.
  DeadlineExpired, ///< The wall-clock deadline passed.
  Cancelled        ///< Externally cancelled (SIGINT, shutdown).
};

/// Display name of \p C ("none", "fuel-exhausted", ...).
const char *stopCauseName(StopCause C);

/// A cooperative cancellation token with a wall-clock deadline and a soft
/// memory budget. Thread-safe; one writer may arm it while any number of
/// workers poll it. May link to a parent token (the batch engine parents
/// every per-job token to the process-wide interrupt token), in which
/// case a stop request on the parent is visible through every child.
class Supervisor {
public:
  Supervisor() = default;
  explicit Supervisor(const Supervisor *Parent) : Parent(Parent) {}

  // The token is polled by address; it must stay put.
  Supervisor(const Supervisor &) = delete;
  Supervisor &operator=(const Supervisor &) = delete;

  /// Requests a stop. Only atomic stores: safe from signal handlers and
  /// from the watchdog thread. The first cause wins; later calls with a
  /// different cause are ignored (the job stopped for the first reason).
  void cancel(StopCause C = StopCause::Cancelled) {
    uint8_t Expected = 0;
    Cause.compare_exchange_strong(Expected, static_cast<uint8_t>(C),
                                  std::memory_order_release,
                                  std::memory_order_relaxed);
  }

  /// True once this token (or an ancestor) wants the computation stopped.
  /// One relaxed load per link: cheap enough for interpreter poll points.
  bool stopRequested() const {
    if (Cause.load(std::memory_order_acquire) != 0)
      return true;
    return Parent && Parent->stopRequested();
  }

  /// The effective stop cause: this token's, or the nearest ancestor's.
  StopCause cause() const {
    if (uint8_t C = Cause.load(std::memory_order_acquire))
      return static_cast<StopCause>(C);
    return Parent ? Parent->cause() : StopCause::None;
  }

  /// Rearms the token for a fresh attempt (retries). Does not clear the
  /// parent: an interrupted batch stays interrupted.
  void reset() {
    Cause.store(0, std::memory_order_release);
    Charged.store(0, std::memory_order_relaxed);
    DeadlineNs.store(0, std::memory_order_release);
  }

  //===--------------------------------------------------------------------===//
  // Deadline (enforced by batch::Watchdog, or by anyone calling
  // enforceDeadline — the token itself never reads the clock on the poll
  // path).
  //===--------------------------------------------------------------------===//

  /// Arms a deadline \p Millis from now (0 disarms).
  void armDeadline(uint64_t Millis) {
    DeadlineNs.store(Millis == 0 ? 0 : nowNs() + Millis * 1'000'000,
                     std::memory_order_release);
  }

  bool hasDeadline() const {
    return DeadlineNs.load(std::memory_order_acquire) != 0;
  }

  /// Cancels with DeadlineExpired if the armed deadline has passed.
  /// Returns true when the deadline is known to have fired (now or
  /// earlier). What the watchdog calls on every tick.
  bool enforceDeadline() {
    uint64_t D = DeadlineNs.load(std::memory_order_acquire);
    if (D == 0 || nowNs() < D)
      return cause() == StopCause::DeadlineExpired;
    cancel(StopCause::DeadlineExpired);
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Soft memory budget: allocation-counting hooks (the streaming sinks,
  // the recording sink, the proof checker) charge bytes here; crossing
  // the budget requests a stop with MemoryBudget.
  //===--------------------------------------------------------------------===//

  /// Sets the soft allocation budget in bytes (0 = unlimited).
  void setMemoryBudget(uint64_t Bytes) {
    BudgetBytes.store(Bytes, std::memory_order_release);
  }

  /// Accounts \p Bytes of tracked allocation against the budget.
  void charge(uint64_t Bytes) {
    uint64_t Total =
        Charged.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
    uint64_t Budget = BudgetBytes.load(std::memory_order_acquire);
    if (Budget != 0 && Total > Budget)
      cancel(StopCause::MemoryBudget);
  }

  /// Tracked bytes charged so far (monotone within one attempt).
  uint64_t chargedBytes() const {
    return Charged.load(std::memory_order_relaxed);
  }

  /// Monotonic now, in nanoseconds (steady_clock).
  static uint64_t nowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Poll granularity for step loops: checking the token every
  /// (Steps & PollMask) == 0 steps keeps the common case at one branch
  /// per step and bounds the cancellation latency to 1024 steps.
  static constexpr uint64_t PollMask = 1023;

  /// True when a step loop at \p Steps should poll \p S. The idiom every
  /// interpreter uses:  if (Supervisor::shouldPoll(Steps, Sup)) ...
  static bool shouldPoll(uint64_t Steps, const Supervisor *S) {
    return S && (Steps & PollMask) == 0 && S->stopRequested();
  }

private:
  std::atomic<uint8_t> Cause{0};
  std::atomic<uint64_t> DeadlineNs{0};
  std::atomic<uint64_t> Charged{0};
  std::atomic<uint64_t> BudgetBytes{0};
  const Supervisor *Parent = nullptr;
};

} // namespace qcc

#endif // QCC_SUPPORT_SUPERVISION_H
