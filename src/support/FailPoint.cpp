//===- support/FailPoint.cpp - Deterministic fault injection --------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "support/FailPoint.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include <unistd.h>

namespace qcc {
namespace failpoint {

namespace {

uint64_t splitmix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

/// err:<name> operands. A short allowlist keeps specs portable and the
/// parser total; eio is the default.
bool lookupErrno(const std::string &Name, int &Out) {
  static const struct {
    const char *Name;
    int Value;
  } Table[] = {
      {"eio", EIO},       {"enospc", ENOSPC},
      {"emfile", EMFILE}, {"enfile", ENFILE},
      {"eintr", EINTR},   {"econnaborted", ECONNABORTED},
      {"epipe", EPIPE},   {"eagain", EAGAIN},
      {"enomem", ENOMEM},
  };
  for (const auto &E : Table)
    if (Name == E.Name) {
      Out = E.Value;
      return true;
    }
  return false;
}

enum class ActKind : uint8_t { Err, Short, Delay, Crash, Off };
enum class TrigKind : uint8_t { Always, Range, Prob };

struct Site {
  ActKind Act = ActKind::Off;
  int Errno = EIO;
  uint64_t DelayMillis = 10;
  TrigKind Trig = TrigKind::Always;
  uint64_t Lo = 1, Hi = ~0ull; // Range, inclusive, 1-based hit numbers
  double P = 1.0;              // Prob
  uint64_t RngState = 0;       // Prob: per-site deterministic stream
  uint64_t Hits = 0;
};

} // namespace

struct Registry::Impl {
  mutable std::mutex M;
  std::unordered_map<std::string, Site> Sites;
  // Hit counts survive for disarmed sites too, so tests can assert "the
  // code path passed this site N times" without arming anything there.
  std::unordered_map<std::string, uint64_t> Hits;
};

Registry::Registry() : I(new Impl) {
  if (const char *Spec = std::getenv("QCC_FAILPOINTS")) {
    uint64_t Seed = 0;
    if (const char *S = std::getenv("QCC_FAILPOINTS_SEED"))
      Seed = std::strtoull(S, nullptr, 10);
    std::string Error;
    if (!configure(Spec, Seed, &Error)) {
      // A typo'd spec must not silently run fault-free: that would turn
      // a chaos run into a vacuous pass. Die loudly.
      fprintf(stderr, "qcc: bad QCC_FAILPOINTS: %s\n", Error.c_str());
      ::_exit(2);
    }
  }
}

Registry &Registry::instance() {
  static Registry *R = new Registry; // leaked: usable during exit paths
  return *R;
}

bool Registry::configure(const std::string &Spec, uint64_t Seed,
                         std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };

  std::unordered_map<std::string, Site> Parsed;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(';', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Entry = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Entry.empty())
      continue;

    size_t Eq = Entry.find('=');
    if (Eq == std::string::npos || Eq == 0)
      return Fail("entry '" + Entry + "': expected site=action[@trigger]");
    std::string Name = Entry.substr(0, Eq);
    std::string Rest = Entry.substr(Eq + 1);

    std::string ActionStr = Rest, TriggerStr;
    if (size_t At = Rest.find('@'); At != std::string::npos) {
      ActionStr = Rest.substr(0, At);
      TriggerStr = Rest.substr(At + 1);
      if (TriggerStr.empty())
        return Fail("entry '" + Entry + "': empty trigger after '@'");
    }

    Site S;
    std::string Operand;
    if (size_t Colon = ActionStr.find(':'); Colon != std::string::npos) {
      Operand = ActionStr.substr(Colon + 1);
      ActionStr = ActionStr.substr(0, Colon);
    }
    if (ActionStr == "err") {
      S.Act = ActKind::Err;
      if (!Operand.empty() && !lookupErrno(Operand, S.Errno))
        return Fail("entry '" + Entry + "': unknown errno name '" + Operand +
                    "'");
    } else if (ActionStr == "short") {
      S.Act = ActKind::Short;
      if (!Operand.empty())
        return Fail("entry '" + Entry + "': 'short' takes no operand");
    } else if (ActionStr == "delay") {
      S.Act = ActKind::Delay;
      if (!Operand.empty()) {
        char *EndP = nullptr;
        S.DelayMillis = std::strtoull(Operand.c_str(), &EndP, 10);
        if (!EndP || *EndP != '\0')
          return Fail("entry '" + Entry + "': bad delay millis '" + Operand +
                      "'");
      }
    } else if (ActionStr == "crash") {
      S.Act = ActKind::Crash;
      if (!Operand.empty())
        return Fail("entry '" + Entry + "': 'crash' takes no operand");
    } else if (ActionStr == "off") {
      continue; // parse the trigger-free form and drop the site
    } else {
      return Fail("entry '" + Entry + "': unknown action '" + ActionStr +
                  "'");
    }

    if (!TriggerStr.empty()) {
      if (TriggerStr[0] == 'p') {
        char *EndP = nullptr;
        S.P = std::strtod(TriggerStr.c_str() + 1, &EndP);
        if (!EndP || *EndP != '\0' || S.P < 0.0 || S.P > 1.0)
          return Fail("entry '" + Entry + "': bad probability '" + TriggerStr +
                      "'");
        S.Trig = TrigKind::Prob;
      } else {
        char *EndP = nullptr;
        uint64_t Lo = std::strtoull(TriggerStr.c_str(), &EndP, 10);
        if (!EndP || EndP == TriggerStr.c_str() || Lo == 0)
          return Fail("entry '" + Entry + "': bad trigger '" + TriggerStr +
                      "' (hit numbers are 1-based)");
        uint64_t Hi = Lo;
        if (EndP[0] == '.' && EndP[1] == '.') {
          char *EndP2 = nullptr;
          Hi = std::strtoull(EndP + 2, &EndP2, 10);
          if (!EndP2 || *EndP2 != '\0' || Hi < Lo)
            return Fail("entry '" + Entry + "': bad trigger range '" +
                        TriggerStr + "'");
        } else if (*EndP != '\0') {
          return Fail("entry '" + Entry + "': bad trigger '" + TriggerStr +
                      "'");
        }
        S.Trig = TrigKind::Range;
        S.Lo = Lo;
        S.Hi = Hi;
      }
    }

    S.RngState = Seed ^ fnv1a(Name);
    Parsed[Name] = S;
  }

  std::lock_guard<std::mutex> L(I->M);
  I->Sites = std::move(Parsed);
  I->Hits.clear();
  ArmedSites.store(I->Sites.size(), std::memory_order_relaxed);
  return true;
}

void Registry::clear() {
  std::lock_guard<std::mutex> L(I->M);
  I->Sites.clear();
  I->Hits.clear();
  ArmedSites.store(0, std::memory_order_relaxed);
}

Action Registry::evaluate(const char *SiteName) {
  ActKind Act;
  int Err;
  uint64_t DelayMillis;
  {
    std::lock_guard<std::mutex> L(I->M);
    ++I->Hits[SiteName];
    auto It = I->Sites.find(SiteName);
    if (It == I->Sites.end())
      return {};
    Site &S = It->second;
    uint64_t Hit = ++S.Hits;
    switch (S.Trig) {
    case TrigKind::Always:
      break;
    case TrigKind::Range:
      if (Hit < S.Lo || Hit > S.Hi)
        return {};
      break;
    case TrigKind::Prob: {
      // Draw in [0,1) from the site's seeded stream; deterministic
      // given (seed, site, hit index) as long as hits arrive in a
      // deterministic order (single-threaded scenarios do).
      double Draw = static_cast<double>(splitmix64(S.RngState) >> 11) *
                    (1.0 / 9007199254740992.0);
      if (Draw >= S.P)
        return {};
      break;
    }
    }
    Act = S.Act;
    Err = S.Errno;
    DelayMillis = S.DelayMillis;
  }

  switch (Act) {
  case ActKind::Err:
    errno = Err;
    return {Kind::Err, Err};
  case ActKind::Short:
    return {Kind::Short, 0};
  case ActKind::Delay:
    std::this_thread::sleep_for(std::chrono::milliseconds(DelayMillis));
    return {};
  case ActKind::Crash:
    // The whole point: no flushes, no destructors, no cleanup — the
    // process vanishes exactly as under SIGKILL or a power cut.
    ::_exit(CrashExitCode);
  case ActKind::Off:
    break;
  }
  return {};
}

uint64_t Registry::hits(const std::string &SiteName) const {
  std::lock_guard<std::mutex> L(I->M);
  auto It = I->Hits.find(SiteName);
  return It == I->Hits.end() ? 0 : It->second;
}

} // namespace failpoint
} // namespace qcc
