//===- support/Io.cpp - Full-transfer POSIX I/O helpers -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "support/Io.h"

#include "support/FailPoint.h"

#include <cerrno>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

namespace qcc {
namespace io {

// Failpoint semantics in the transfer loops ("io.read", "io.write",
// "io.send", "io.fsync"): Err fails the whole transfer with the injected
// errno; Short truncates the transfer to half its length and then behaves
// exactly as the real syscall would — a failed write (some bytes really
// moved, then an error) or an early EOF on read. Both leave the fd's
// actual state consistent with what the caller is told, so torn-write
// scenarios built on these are honest about what reached the kernel.

bool writeFull(int Fd, const void *Data, size_t Len) {
  size_t Limit = Len;
  if (auto A = failpoint::fire("io.write")) {
    if (A.K == failpoint::Kind::Err)
      return false;
    Limit = Len / 2; // Short: half really lands, then the error
  }
  const char *P = static_cast<const char *>(Data);
  size_t Off = 0;
  while (Off < Limit) {
    ssize_t N = ::write(Fd, P + Off, Limit - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  if (Limit != Len) {
    errno = EIO;
    return false;
  }
  return true;
}

long readFull(int Fd, void *Data, size_t Len) {
  size_t Limit = Len;
  if (auto A = failpoint::fire("io.read")) {
    if (A.K == failpoint::Kind::Err)
      return -1;
    Limit = Len / 2; // Short: the stream "ends" halfway
  }
  char *P = static_cast<char *>(Data);
  size_t Off = 0;
  while (Off < Limit) {
    ssize_t N = ::read(Fd, P + Off, Limit - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N == 0) // EOF: report how far we got; the caller decides.
      break;
    Off += static_cast<size_t>(N);
  }
  return static_cast<long>(Off);
}

bool sendFull(int Fd, const void *Data, size_t Len) {
  size_t Limit = Len;
  if (auto A = failpoint::fire("io.send")) {
    if (A.K == failpoint::Kind::Err)
      return false;
    Limit = Len / 2;
  }
  const char *P = static_cast<const char *>(Data);
  size_t Off = 0;
  while (Off < Limit) {
    ssize_t N = ::send(Fd, P + Off, Limit - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  if (Limit != Len) {
    errno = EPIPE;
    return false;
  }
  return true;
}

bool fsyncFull(int Fd) {
  if (auto A = failpoint::fire("io.fsync")) {
    (void)A;
    return false; // Err and Short both mean "the barrier failed"
  }
  while (::fsync(Fd) != 0) {
    if (errno != EINTR)
      return false;
  }
  return true;
}

bool readFile(const std::string &Path, std::string &Out) {
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    return false;
  Out.clear();
  struct stat St;
  if (::fstat(Fd, &St) == 0 && St.st_size > 0)
    Out.reserve(static_cast<size_t>(St.st_size));
  char Buf[1 << 16];
  bool Ok = true;
  for (;;) {
    long N = readFull(Fd, Buf, sizeof Buf);
    if (N < 0) {
      Ok = false;
      break;
    }
    Out.append(Buf, static_cast<size_t>(N));
    if (static_cast<size_t>(N) < sizeof Buf) // EOF
      break;
  }
  ::close(Fd);
  return Ok;
}

} // namespace io
} // namespace qcc
