//===- support/Io.cpp - Full-transfer POSIX I/O helpers -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "support/Io.h"

#include <cerrno>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

namespace qcc {
namespace io {

bool writeFull(int Fd, const void *Data, size_t Len) {
  const char *P = static_cast<const char *>(Data);
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::write(Fd, P + Off, Len - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

long readFull(int Fd, void *Data, size_t Len) {
  char *P = static_cast<char *>(Data);
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::read(Fd, P + Off, Len - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (N == 0) // EOF: report how far we got; the caller decides.
      break;
    Off += static_cast<size_t>(N);
  }
  return static_cast<long>(Off);
}

bool sendFull(int Fd, const void *Data, size_t Len) {
  const char *P = static_cast<const char *>(Data);
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::send(Fd, P + Off, Len - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool fsyncFull(int Fd) {
  while (::fsync(Fd) != 0) {
    if (errno != EINTR)
      return false;
  }
  return true;
}

bool readFile(const std::string &Path, std::string &Out) {
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0)
    return false;
  Out.clear();
  struct stat St;
  if (::fstat(Fd, &St) == 0 && St.st_size > 0)
    Out.reserve(static_cast<size_t>(St.st_size));
  char Buf[1 << 16];
  bool Ok = true;
  for (;;) {
    long N = readFull(Fd, Buf, sizeof Buf);
    if (N < 0) {
      Ok = false;
      break;
    }
    Out.append(Buf, static_cast<size_t>(N));
    if (static_cast<size_t>(N) < sizeof Buf) // EOF
      break;
  }
  ::close(Fd);
  return Ok;
}

} // namespace io
} // namespace qcc
