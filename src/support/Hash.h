//===- support/Hash.h - Content hashing ------------------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small incremental FNV-1a 64-bit hasher. The batch engine keys its
/// result cache on a content hash of (source text, compiler options);
/// fields are length-prefixed so adjacent strings cannot alias.
///
/// Mix64 is a second, independent 64-bit digest over the same byte
/// stream (different multiplier, rotation, and finalizer). A cache or
/// store entry records both digests and verifies the second on every
/// hit, so serving a result for the wrong source requires a simultaneous
/// collision in two unrelated hash functions (~2^-128) rather than one.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_SUPPORT_HASH_H
#define QCC_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace qcc {

/// Incremental FNV-1a (64-bit). Stateless value type; every `add`
/// returns *this so keys read as one fluent expression.
class Fnv1a64 {
public:
  Fnv1a64 &bytes(const void *Data, size_t Len) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != Len; ++I) {
      State ^= P[I];
      State *= 0x100000001b3ull;
    }
    return *this;
  }

  Fnv1a64 &u64(uint64_t V) { return bytes(&V, sizeof V); }

  Fnv1a64 &boolean(bool B) { return u64(B ? 1 : 2); }

  /// Length-prefixed, so str("ab").str("c") != str("a").str("bc").
  Fnv1a64 &str(const std::string &S) {
    u64(S.size());
    return bytes(S.data(), S.size());
  }

  uint64_t digest() const { return State; }

private:
  uint64_t State = 0xcbf29ce484222325ull;
};

/// The independent second digest: byte-wise multiply-rotate with the
/// golden-ratio prime, finalized by the splitmix64 avalanche. Structurally
/// unrelated to FNV-1a (different multiplier, an extra rotation, and a
/// finalizer), so the two digests do not collide together.
class Mix64 {
public:
  Mix64 &bytes(const void *Data, size_t Len) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != Len; ++I) {
      State = (State ^ P[I]) * 0x9e3779b97f4a7c15ull;
      State = (State << 23) | (State >> 41);
    }
    return *this;
  }

  Mix64 &u64(uint64_t V) { return bytes(&V, sizeof V); }
  Mix64 &boolean(bool B) { return u64(B ? 1 : 2); }
  Mix64 &str(const std::string &S) {
    u64(S.size());
    return bytes(S.data(), S.size());
  }

  uint64_t digest() const {
    uint64_t Z = State + 0x9e3779b97f4a7c15ull;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State = 0x6a09e667f3bcc908ull; // sqrt(2) fraction bits.
};

/// One byte stream feeding both digests: the content-key idiom of the
/// cache and the persistent store.
class Hash128 {
public:
  Hash128 &bytes(const void *Data, size_t Len) {
    A.bytes(Data, Len);
    B.bytes(Data, Len);
    return *this;
  }
  Hash128 &u64(uint64_t V) {
    A.u64(V);
    B.u64(V);
    return *this;
  }
  Hash128 &boolean(bool Bo) {
    A.boolean(Bo);
    B.boolean(Bo);
    return *this;
  }
  Hash128 &str(const std::string &S) {
    A.str(S);
    B.str(S);
    return *this;
  }

  /// The primary (bucket) digest: FNV-1a, unchanged from PR 1 so journal
  /// and cache keys stay comparable across versions.
  uint64_t primary() const { return A.digest(); }
  /// The independent verification digest.
  uint64_t verify() const { return B.digest(); }

private:
  Fnv1a64 A;
  Mix64 B;
};

} // namespace qcc

#endif // QCC_SUPPORT_HASH_H
