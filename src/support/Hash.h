//===- support/Hash.h - Content hashing ------------------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small incremental FNV-1a 64-bit hasher. The batch engine keys its
/// result cache on a content hash of (source text, compiler options);
/// fields are length-prefixed so adjacent strings cannot alias.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_SUPPORT_HASH_H
#define QCC_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace qcc {

/// Incremental FNV-1a (64-bit). Stateless value type; every `add`
/// returns *this so keys read as one fluent expression.
class Fnv1a64 {
public:
  Fnv1a64 &bytes(const void *Data, size_t Len) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != Len; ++I) {
      State ^= P[I];
      State *= 0x100000001b3ull;
    }
    return *this;
  }

  Fnv1a64 &u64(uint64_t V) { return bytes(&V, sizeof V); }

  Fnv1a64 &boolean(bool B) { return u64(B ? 1 : 2); }

  /// Length-prefixed, so str("ab").str("c") != str("a").str("bc").
  Fnv1a64 &str(const std::string &S) {
    u64(S.size());
    return bytes(S.data(), S.size());
  }

  uint64_t digest() const { return State; }

private:
  uint64_t State = 0xcbf29ce484222325ull;
};

} // namespace qcc

#endif // QCC_SUPPORT_HASH_H
