//===- support/FailPoint.h - Deterministic fault injection ------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named fault-injection sites ("failpoints") threaded through every I/O
/// and resource edge of the system: the support/Io transfer loops, the
/// store's tmp+fsync+rename commit path and flock protocol, the FuncStore
/// manifests, the daemon's accept loop and frame codec, pool task
/// submission, and the client's connect path. A site is a compiled-in
/// `failpoint::fire("store.fsync")` call that is free when nothing is
/// armed (one relaxed atomic load) and that consults a process-global
/// spec when something is.
///
/// Specs arm sites from the environment (`QCC_FAILPOINTS`) or
/// programmatically (tests, the chaos harness):
///
///   spec    := entry (';' entry)*
///   entry   := site '=' action ('@' trigger)?
///   action  := 'err' (':' errname)?    fail the operation (errno set)
///            | 'short'                 stop the transfer halfway
///            | 'delay' (':' millis)?   sleep before proceeding
///            | 'crash'                 _exit(137), simulating kill -9
///            | 'off'                   disarm the site
///   trigger := count                   fire on exactly the Nth hit (1-based)
///            | count '..' count        fire on hits N through M inclusive
///            | 'p' float               fire with probability p (seeded,
///                                      deterministic; see QCC_FAILPOINTS_SEED)
///                                      (default: fire on every hit)
///   errname := 'eio' | 'enospc' | 'emfile' | 'enfile' | 'eintr'
///            | 'econnaborted' | 'epipe' | 'eagain' | 'enomem'
///
///   QCC_FAILPOINTS="store.fsync=err@3;daemon.write=short@p0.1"
///
/// Injection is deterministic: the probabilistic trigger draws from a
/// per-site splitmix64 stream seeded from QCC_FAILPOINTS_SEED (or
/// configure()'s seed) xor the site-name hash, so a (spec, seed) pair
/// replays the same faults on every run — the chaos harness depends on
/// this to shrink and to re-run scenarios.
///
/// `crash` calls _exit inside fire(): no atexit handlers, no stream
/// flushes, no destructors — the closest portable stand-in for SIGKILL
/// mid-operation. Sites on the store's write path fire *before* the
/// matching syscall, so a crash leaves exactly the torn state a real
/// power cut could: empty tmp files, half-written tmp files, completed
/// tmp files that were never renamed.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_SUPPORT_FAILPOINT_H
#define QCC_SUPPORT_FAILPOINT_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace qcc {
namespace failpoint {

/// What a fired site tells its caller to do. Delay and crash are applied
/// inside fire() itself; Err and Short are returned for the call site to
/// honour (only it knows what "fail" and "half the transfer" mean).
enum class Kind : uint8_t {
  None,  ///< proceed normally
  Err,   ///< fail the operation with `Errno`
  Short, ///< perform roughly half the transfer, then report failure/EOF
};

struct Action {
  Kind K = Kind::None;
  int Errno = 0; // valid when K == Err
  explicit operator bool() const { return K != Kind::None; }
};

/// The process-global failpoint registry. All members are thread-safe.
class Registry {
public:
  /// The singleton. First use loads QCC_FAILPOINTS / QCC_FAILPOINTS_SEED
  /// from the environment, so exec'd children configured via env need no
  /// code changes.
  static Registry &instance();

  /// Parses \p Spec (grammar above) and replaces the armed-site table.
  /// An empty spec clears everything. On a grammar error returns false,
  /// arms nothing, and describes the problem in *Error.
  bool configure(const std::string &Spec, uint64_t Seed = 0,
                 std::string *Error = nullptr);

  /// Disarms every site.
  void clear();

  /// True iff any site is armed — the fast-path check fire() inlines.
  bool armed() const { return ArmedSites.load(std::memory_order_relaxed) != 0; }

  /// Evaluates one hit of \p Site. Applies delay (sleeps) and crash
  /// (_exit(137)) internally; returns Err/Short for the caller.
  Action evaluate(const char *Site);

  /// Total hits observed at \p Site since the last configure/clear,
  /// armed or not matching. For tests and the chaos harness.
  uint64_t hits(const std::string &Site) const;

private:
  Registry();

  std::atomic<uint64_t> ArmedSites{0};
  struct Impl;
  Impl *I; // leaked singleton state; never destroyed
};

/// The one call injected at a site. Free when nothing is armed.
inline Action fire(const char *Site) {
  Registry &R = Registry::instance();
  if (!R.armed())
    return {};
  return R.evaluate(Site);
}

/// RAII spec installer for tests: configures on construction, clears on
/// destruction. Aborts the test (via the returned Ok flag) rather than
/// silently running without faults if the spec fails to parse.
class ScopedSpec {
public:
  explicit ScopedSpec(const std::string &Spec, uint64_t Seed = 0) {
    Ok = Registry::instance().configure(Spec, Seed, &Error);
  }
  ~ScopedSpec() { Registry::instance().clear(); }
  ScopedSpec(const ScopedSpec &) = delete;
  ScopedSpec &operator=(const ScopedSpec &) = delete;

  bool Ok = false;
  std::string Error;
};

/// The exit code `crash` dies with: 128+9, the shell's code for SIGKILL.
constexpr int CrashExitCode = 137;

} // namespace failpoint
} // namespace qcc

#endif // QCC_SUPPORT_FAILPOINT_H
