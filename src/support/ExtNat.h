//===- support/ExtNat.h - Extended naturals N + infinity --------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ExtNat models the codomain N U {oo} of quantitative Hoare assertions
/// (Paper section 4.3). The classic boolean `false` is represented by the
/// infinite element, `true` is refined into a concrete number of bytes.
/// All arithmetic saturates at infinity.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_SUPPORT_EXTNAT_H
#define QCC_SUPPORT_EXTNAT_H

#include <cassert>
#include <cstdint>
#include <limits>
#include <string>

namespace qcc {

/// A natural number extended with a single infinite element.
///
/// Addition, multiplication, max and min saturate: anything involving
/// infinity is infinity (except multiplication by a finite zero, which is
/// defined as zero so that scaling an empty bound stays empty), and a
/// finite result that would not fit in uint64_t saturates to infinity as
/// well, in every build mode — overflow may cost precision but never
/// soundness. Subtraction is truncated at zero, and infinity minus a
/// finite value stays infinite.
class ExtNat {
public:
  /// Constructs zero.
  ExtNat() : Value(0), Inf(false) {}

  /// Constructs a finite value.
  ExtNat(uint64_t V) : Value(V), Inf(false) {} // NOLINT: implicit by design.

  /// Returns the infinite element (the quantitative `false`).
  static ExtNat infinity() {
    ExtNat N;
    N.Inf = true;
    N.Value = 0;
    return N;
  }

  bool isInfinite() const { return Inf; }
  bool isFinite() const { return !Inf; }

  /// Returns the finite payload; must not be called on infinity.
  uint64_t finiteValue() const {
    assert(!Inf && "finiteValue() on the infinite element");
    return Value;
  }

  /// Checked saturation: a finite sum that would exceed uint64_t becomes
  /// infinity. Saturating (rather than asserting) keeps the operation
  /// total in every build mode; an assert would vanish under NDEBUG and
  /// let the sum wrap, silently *under*-approximating a bound — the one
  /// failure mode a stack-bound certifier must exclude. Rounding up to
  /// infinity is always sound: the checker can only lose precision, never
  /// certify too small a bound.
  ExtNat operator+(ExtNat O) const {
    if (Inf || O.Inf)
      return infinity();
    if (Value > std::numeric_limits<uint64_t>::max() - O.Value)
      return infinity();
    return ExtNat(Value + O.Value);
  }

  /// Truncated subtraction: max(0, a - b); oo - finite = oo. Subtracting
  /// infinity from anything yields zero (there is nothing left to pay).
  ExtNat monus(ExtNat O) const {
    if (O.Inf)
      return ExtNat(0);
    if (Inf)
      return infinity();
    return ExtNat(Value > O.Value ? Value - O.Value : 0);
  }

  /// Checked saturation, like operator+: a finite product that would
  /// exceed uint64_t becomes infinity (sound — bounds only round up).
  /// Multiplication by a finite zero stays zero, even against infinity.
  ExtNat operator*(ExtNat O) const {
    if ((isFinite() && Value == 0) || (O.isFinite() && O.Value == 0))
      return ExtNat(0);
    if (Inf || O.Inf)
      return infinity();
    if (Value > std::numeric_limits<uint64_t>::max() / O.Value)
      return infinity();
    return ExtNat(Value * O.Value);
  }

  friend ExtNat max(ExtNat A, ExtNat B) { return A < B ? B : A; }
  friend ExtNat min(ExtNat A, ExtNat B) { return A < B ? A : B; }

  bool operator==(const ExtNat &O) const {
    return Inf == O.Inf && (Inf || Value == O.Value);
  }
  bool operator!=(const ExtNat &O) const { return !(*this == O); }

  /// Total order with infinity as the top element.
  bool operator<(const ExtNat &O) const {
    if (Inf)
      return false;
    if (O.Inf)
      return true;
    return Value < O.Value;
  }
  bool operator<=(const ExtNat &O) const { return *this < O || *this == O; }
  bool operator>(const ExtNat &O) const { return O < *this; }
  bool operator>=(const ExtNat &O) const { return O <= *this; }

  /// Renders as a decimal numeral or the string "oo".
  std::string str() const { return Inf ? "oo" : std::to_string(Value); }

private:
  uint64_t Value;
  bool Inf;
};

/// Floor of log2 with the paper's conventions (Paper section 2): values
/// below 1 map to 0, and callers encode the "undefined on negatives" case
/// as infinity before reaching this helper.
inline uint64_t floorLog2(uint64_t V) {
  uint64_t R = 0;
  while (V > 1) {
    V >>= 1;
    ++R;
  }
  return R;
}

/// Ceiling of log2: the number of halvings needed to reach 1, which is the
/// recursion depth of binary search over an interval of width V.
inline uint64_t ceilLog2(uint64_t V) {
  if (V <= 1)
    return 0;
  return floorLog2(V - 1) + 1;
}

} // namespace qcc

#endif // QCC_SUPPORT_EXTNAT_H
