//===- clight/Verify.h - Clight well-formedness checks ----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness of Clight core programs: every name resolves,
/// call arities match, call results go where results exist, `break` only
/// occurs inside `loop`, and array/scalar accesses agree with declarations.
/// Every consumer of Clight core (interpreter, logic, analyzer, lowering)
/// may assume a verified program.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_CLIGHT_VERIFY_H
#define QCC_CLIGHT_VERIFY_H

#include "clight/Clight.h"
#include "support/Diagnostics.h"

namespace qcc {
namespace clight {

/// Checks \p P; reports problems to \p Diags. Returns true when no errors
/// were found.
bool verify(const Program &P, DiagnosticEngine &Diags);

} // namespace clight
} // namespace qcc

#endif // QCC_CLIGHT_VERIFY_H
