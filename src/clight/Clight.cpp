//===- clight/Clight.cpp - Clight core IR ---------------------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "clight/Clight.h"

#include <cassert>

using namespace qcc;
using namespace qcc::clight;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

const char *qcc::clight::binOpSpelling(BinOp Op) {
  switch (Op) {
  case BinOp::Add: return "+";
  case BinOp::Sub: return "-";
  case BinOp::Mul: return "*";
  case BinOp::DivS: return "/s";
  case BinOp::DivU: return "/u";
  case BinOp::ModS: return "%s";
  case BinOp::ModU: return "%u";
  case BinOp::And: return "&";
  case BinOp::Or: return "|";
  case BinOp::Xor: return "^";
  case BinOp::Shl: return "<<";
  case BinOp::ShrS: return ">>s";
  case BinOp::ShrU: return ">>u";
  case BinOp::Eq: return "==";
  case BinOp::Ne: return "!=";
  case BinOp::LtS: return "<s";
  case BinOp::LtU: return "<u";
  case BinOp::LeS: return "<=s";
  case BinOp::LeU: return "<=u";
  case BinOp::GtS: return ">s";
  case BinOp::GtU: return ">u";
  case BinOp::GeS: return ">=s";
  case BinOp::GeU: return ">=u";
  }
  return "?";
}

ExprPtr Expr::intConst(uint32_t V, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::IntConst;
  E->IntValue = V;
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::localRead(std::string Name, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::LocalRead;
  E->Name = std::move(Name);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::globalRead(std::string Name, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::GlobalRead;
  E->Name = std::move(Name);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::arrayRead(std::string Name, ExprPtr Index, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::ArrayRead;
  E->Name = std::move(Name);
  E->Lhs = std::move(Index);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::unary(UnOp Op, ExprPtr Operand, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Unary;
  E->UOp = Op;
  E->Lhs = std::move(Operand);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::binary(BinOp Op, ExprPtr L, ExprPtr R, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Binary;
  E->BOp = Op;
  E->Lhs = std::move(L);
  E->Rhs = std::move(R);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::cond(ExprPtr C, ExprPtr T, ExprPtr F, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Cond;
  E->Lhs = std::move(C);
  E->Rhs = std::move(T);
  E->Third = std::move(F);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::clone() const {
  auto E = std::make_unique<Expr>();
  E->Kind = Kind;
  E->Loc = Loc;
  E->IntValue = IntValue;
  E->Name = Name;
  E->UOp = UOp;
  E->BOp = BOp;
  if (Lhs)
    E->Lhs = Lhs->clone();
  if (Rhs)
    E->Rhs = Rhs->clone();
  if (Third)
    E->Third = Third->clone();
  return E;
}

std::string Expr::str() const {
  switch (Kind) {
  case ExprKind::IntConst:
    return std::to_string(IntValue);
  case ExprKind::LocalRead:
  case ExprKind::GlobalRead:
    return Name;
  case ExprKind::ArrayRead:
    return Name + "[" + Lhs->str() + "]";
  case ExprKind::Unary: {
    const char *Sp = UOp == UnOp::Neg ? "-" : UOp == UnOp::BoolNot ? "!" : "~";
    return std::string(Sp) + "(" + Lhs->str() + ")";
  }
  case ExprKind::Binary:
    return "(" + Lhs->str() + " " + binOpSpelling(BOp) + " " + Rhs->str() +
           ")";
  case ExprKind::Cond:
    return "(" + Lhs->str() + " ? " + Rhs->str() + " : " + Third->str() + ")";
  }
  return "<bad expr>";
}

//===----------------------------------------------------------------------===//
// LValues
//===----------------------------------------------------------------------===//

LValue LValue::local(std::string Name) {
  return LValue{Kind::Local, std::move(Name), nullptr};
}
LValue LValue::global(std::string Name) {
  return LValue{Kind::Global, std::move(Name), nullptr};
}
LValue LValue::arrayElem(std::string Name, ExprPtr Index) {
  return LValue{Kind::ArrayElem, std::move(Name), std::move(Index)};
}

LValue LValue::clone() const {
  return LValue{K, Name, Index ? Index->clone() : nullptr};
}

std::string LValue::str() const {
  if (K == Kind::ArrayElem)
    return Name + "[" + Index->str() + "]";
  return Name;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Stmt::skip(SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Skip;
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::assign(LValue Dest, ExprPtr Value, SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Assign;
  S->HasDest = true;
  S->Dest = std::move(Dest);
  S->Value = std::move(Value);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::call(std::string Callee, std::vector<ExprPtr> Args,
                   SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Call;
  S->Callee = std::move(Callee);
  S->Args = std::move(Args);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::callAssign(LValue Dest, std::string Callee,
                         std::vector<ExprPtr> Args, SourceLoc Loc) {
  StmtPtr S = call(std::move(Callee), std::move(Args), Loc);
  S->HasDest = true;
  S->Dest = std::move(Dest);
  return S;
}

StmtPtr Stmt::seq(StmtPtr S1, StmtPtr S2, SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Seq;
  S->First = std::move(S1);
  S->Second = std::move(S2);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::ifThenElse(ExprPtr Cond, StmtPtr Then, StmtPtr Else,
                         SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::If;
  S->Value = std::move(Cond);
  S->First = std::move(Then);
  S->Second = std::move(Else);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::loop(StmtPtr Body, SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Loop;
  S->First = std::move(Body);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::brk(SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Break;
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::retVoid(SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Return;
  S->HasValue = false;
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::ret(ExprPtr Value, SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Return;
  S->HasValue = true;
  S->Value = std::move(Value);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::clone() const {
  auto S = std::make_unique<Stmt>();
  S->Kind = Kind;
  S->Loc = Loc;
  S->HasDest = HasDest;
  S->Dest = Dest.clone();
  if (Value)
    S->Value = Value->clone();
  S->HasValue = HasValue;
  S->Callee = Callee;
  for (const ExprPtr &A : Args)
    S->Args.push_back(A->clone());
  if (First)
    S->First = First->clone();
  if (Second)
    S->Second = Second->clone();
  return S;
}

std::string Stmt::str(unsigned Indent) const {
  std::string Pad(Indent * 2, ' ');
  switch (Kind) {
  case StmtKind::Skip:
    return Pad + "skip;\n";
  case StmtKind::Assign:
    return Pad + Dest.str() + " = " + Value->str() + ";\n";
  case StmtKind::Call: {
    std::string Out = Pad;
    if (HasDest)
      Out += Dest.str() + " = ";
    Out += Callee + "(";
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Args[I]->str();
    }
    Out += ");\n";
    return Out;
  }
  case StmtKind::Seq:
    return First->str(Indent) + Second->str(Indent);
  case StmtKind::If:
    return Pad + "if (" + Value->str() + ") {\n" + First->str(Indent + 1) +
           Pad + "} else {\n" + Second->str(Indent + 1) + Pad + "}\n";
  case StmtKind::Loop:
    return Pad + "loop {\n" + First->str(Indent + 1) + Pad + "}\n";
  case StmtKind::Break:
    return Pad + "break;\n";
  case StmtKind::Return:
    return Pad + (HasValue ? "return " + Value->str() + ";\n" : "return;\n");
  }
  return Pad + "<bad stmt>\n";
}

//===----------------------------------------------------------------------===//
// Programs
//===----------------------------------------------------------------------===//

Function Function::clone() const {
  Function F;
  F.Name = Name;
  F.Params = Params;
  F.Locals = Locals;
  F.VarSigns = VarSigns;
  F.ReturnsValue = ReturnsValue;
  F.Body = Body ? Body->clone() : nullptr;
  F.Loc = Loc;
  return F;
}

Program Program::clone() const {
  Program P;
  P.Globals = Globals;
  P.Externals = Externals;
  for (const Function &F : Functions)
    P.Functions.push_back(F.clone());
  P.EntryPoint = EntryPoint;
  return P;
}

const Function *Program::findFunction(const std::string &Name) const {
  for (const Function &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const GlobalVar *Program::findGlobal(const std::string &Name) const {
  for (const GlobalVar &G : Globals)
    if (G.Name == Name)
      return &G;
  return nullptr;
}

const ExternalDecl *Program::findExternal(const std::string &Name) const {
  for (const ExternalDecl &E : Externals)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

std::string Program::str() const {
  std::string Out;
  for (const GlobalVar &G : Globals) {
    Out += (G.Sign == Signedness::Signed ? "int " : "u32 ") + G.Name;
    if (G.IsArray)
      Out += "[" + std::to_string(G.Size) + "]";
    Out += ";\n";
  }
  for (const ExternalDecl &E : Externals)
    Out += "extern " + std::string(E.HasResult ? "u32 " : "void ") + E.Name +
           "(/*arity " + std::to_string(E.Arity) + "*/);\n";
  for (const Function &F : Functions) {
    Out += (F.ReturnsValue ? "u32 " : "void ") + F.Name + "(";
    for (size_t I = 0; I != F.Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += "u32 " + F.Params[I];
    }
    Out += ") {\n";
    for (const std::string &L : F.Locals)
      Out += "  u32 " + L + ";\n";
    Out += F.Body->str(1);
    Out += "}\n";
  }
  return Out;
}
