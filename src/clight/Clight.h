//===- clight/Clight.h - Clight core IR -------------------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Clight core IR, following the statement grammar of Paper section 4.1:
///
///   S ::= skip | x = E | x = f(E*) | S1; S2 | loop S
///       | if (E) then S1 else S2 | break | return E
///
/// extended with stores to global scalars and global arrays (the paper's
/// Clight has general memory; our subset confines addressable data to
/// globals, which is all the evaluation corpus needs). Expressions are free
/// of side effects; loops are infinite unless exited by break or return;
/// `while` and `for` are desugared by the frontend.
///
/// Values are 32-bit machine words. Signedness lives in the *operators*
/// (DivS vs DivU etc.), chosen by the elaborator from the static C types,
/// exactly as CompCert's Clight does.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_CLIGHT_CLIGHT_H
#define QCC_CLIGHT_CLIGHT_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qcc {
namespace clight {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntConst,  ///< 32-bit literal.
  LocalRead, ///< Read a local variable or parameter.
  GlobalRead,///< Read a global scalar.
  ArrayRead, ///< Read element of a global array.
  Unary,     ///< Unary operator.
  Binary,    ///< Binary operator.
  Cond       ///< c ? t : f; gives && and || their short-circuit semantics.
};

enum class UnOp : uint8_t {
  Neg,    ///< Two's-complement negation.
  BoolNot,///< !e: 1 if e == 0 else 0.
  BitNot  ///< ~e.
};

/// Binary operators. Signed/unsigned variants are distinct operators; the
/// elaborator picks the variant from the static types.
enum class BinOp : uint8_t {
  Add, Sub, Mul,
  DivS, DivU, ModS, ModU,
  And, Or, Xor,
  Shl, ShrS, ShrU,
  Eq, Ne,
  LtS, LtU, LeS, LeU, GtS, GtU, GeS, GeU
};

/// Returns a C-like spelling such as "+", "/s", "<u".
const char *binOpSpelling(BinOp Op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One expression node; \c Kind selects which fields are meaningful.
struct Expr {
  ExprKind Kind;
  SourceLoc Loc;

  uint32_t IntValue = 0;        ///< IntConst.
  std::string Name;             ///< LocalRead/GlobalRead/ArrayRead.
  UnOp UOp = UnOp::Neg;         ///< Unary.
  BinOp BOp = BinOp::Add;       ///< Binary.
  ExprPtr Lhs;                  ///< Unary operand / Binary lhs / Cond cond /
                                ///< ArrayRead index.
  ExprPtr Rhs;                  ///< Binary rhs / Cond then.
  ExprPtr Third;                ///< Cond else.

  static ExprPtr intConst(uint32_t V, SourceLoc Loc = {});
  static ExprPtr localRead(std::string Name, SourceLoc Loc = {});
  static ExprPtr globalRead(std::string Name, SourceLoc Loc = {});
  static ExprPtr arrayRead(std::string Name, ExprPtr Index,
                           SourceLoc Loc = {});
  static ExprPtr unary(UnOp Op, ExprPtr E, SourceLoc Loc = {});
  static ExprPtr binary(BinOp Op, ExprPtr L, ExprPtr R, SourceLoc Loc = {});
  static ExprPtr cond(ExprPtr C, ExprPtr T, ExprPtr F, SourceLoc Loc = {});

  /// Deep copy.
  ExprPtr clone() const;

  /// Renders as a parenthesized C-like expression.
  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// The target of an assignment or of a call result.
struct LValue {
  enum class Kind : uint8_t { Local, Global, ArrayElem } K;
  std::string Name;
  ExprPtr Index; ///< ArrayElem only.

  static LValue local(std::string Name);
  static LValue global(std::string Name);
  static LValue arrayElem(std::string Name, ExprPtr Index);

  LValue clone() const;
  std::string str() const;
};

enum class StmtKind : uint8_t {
  Skip,
  Assign, ///< lv = E
  Call,   ///< [lv =] f(E*)
  Seq,    ///< S1; S2
  If,     ///< if (E) S1 else S2
  Loop,   ///< loop S  (infinite unless break/return)
  Break,
  Return  ///< return [E]
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// One statement node; \c Kind selects which fields are meaningful.
struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;

  // Assign / Call destination.
  bool HasDest = false;
  LValue Dest{LValue::Kind::Local, "", nullptr};

  ExprPtr Value;                 ///< Assign rhs / If condition / Return value.
  bool HasValue = false;         ///< Return: carries a value?
  std::string Callee;            ///< Call.
  std::vector<ExprPtr> Args;     ///< Call.
  StmtPtr First;                 ///< Seq S1 / If then / Loop body.
  StmtPtr Second;                ///< Seq S2 / If else.

  static StmtPtr skip(SourceLoc Loc = {});
  static StmtPtr assign(LValue Dest, ExprPtr Value, SourceLoc Loc = {});
  static StmtPtr call(std::string Callee, std::vector<ExprPtr> Args,
                      SourceLoc Loc = {});
  static StmtPtr callAssign(LValue Dest, std::string Callee,
                            std::vector<ExprPtr> Args, SourceLoc Loc = {});
  static StmtPtr seq(StmtPtr S1, StmtPtr S2, SourceLoc Loc = {});
  static StmtPtr ifThenElse(ExprPtr Cond, StmtPtr Then, StmtPtr Else,
                            SourceLoc Loc = {});
  static StmtPtr loop(StmtPtr Body, SourceLoc Loc = {});
  static StmtPtr brk(SourceLoc Loc = {});
  static StmtPtr retVoid(SourceLoc Loc = {});
  static StmtPtr ret(ExprPtr Value, SourceLoc Loc = {});

  StmtPtr clone() const;

  /// Renders as indented C-like pseudocode.
  std::string str(unsigned Indent = 0) const;
};

//===----------------------------------------------------------------------===//
// Programs
//===----------------------------------------------------------------------===//

/// Static scalar type: word signedness. Arrays are arrays of words.
enum class Signedness : uint8_t { Signed, Unsigned };

/// A global variable: a scalar (Size == 1, IsArray == false) or an array of
/// 32-bit words.
struct GlobalVar {
  std::string Name;
  bool IsArray = false;
  uint32_t Size = 1; ///< Element count.
  Signedness Sign = Signedness::Unsigned;
  std::vector<uint32_t> Init; ///< Padded with zeros to Size.
  SourceLoc Loc;
};

/// A declared external function (I/O): calls emit external events and
/// consume no stack by the paper's stack-metric convention.
struct ExternalDecl {
  std::string Name;
  unsigned Arity = 0;
  bool HasResult = false;
  SourceLoc Loc;
};

/// An internal function definition.
struct Function {
  std::string Name;
  std::vector<std::string> Params;
  std::vector<std::string> Locals;
  /// Static signedness of each parameter and local (the quantitative
  /// logic's term language reads 32-bit values through this lens).
  std::map<std::string, Signedness> VarSigns;
  bool ReturnsValue = false;
  StmtPtr Body;
  SourceLoc Loc;

  Function() = default;
  Function(Function &&) = default;
  Function &operator=(Function &&) = default;

  Function clone() const;
};

/// A whole Clight program: globals, externals, functions, and the entry
/// point (always "main" in the corpus).
struct Program {
  std::vector<GlobalVar> Globals;
  std::vector<ExternalDecl> Externals;
  std::vector<Function> Functions;
  std::string EntryPoint = "main";

  Program() = default;
  Program(Program &&) = default;
  Program &operator=(Program &&) = default;

  Program clone() const;

  const Function *findFunction(const std::string &Name) const;
  const GlobalVar *findGlobal(const std::string &Name) const;
  const ExternalDecl *findExternal(const std::string &Name) const;

  /// Renders the whole program as C-like pseudocode.
  std::string str() const;
};

} // namespace clight
} // namespace qcc

#endif // QCC_CLIGHT_CLIGHT_H
