//===- clight/Verify.cpp - Clight well-formedness checks ------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "clight/Verify.h"

#include <set>

using namespace qcc;
using namespace qcc::clight;

namespace {

/// Walks one function checking names, arities, and structural rules.
class Verifier {
public:
  Verifier(const Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  void run() {
    std::set<std::string> Seen;
    for (const GlobalVar &G : P.Globals)
      if (!Seen.insert(G.Name).second)
        Diags.error(G.Loc, "duplicate global '" + G.Name + "'");
    for (const ExternalDecl &E : P.Externals)
      if (!Seen.insert(E.Name).second)
        Diags.error(E.Loc, "duplicate declaration '" + E.Name + "'");
    for (const Function &F : P.Functions)
      if (!Seen.insert(F.Name).second)
        Diags.error(F.Loc, "duplicate function '" + F.Name + "'");

    const Function *Main = P.findFunction(P.EntryPoint);
    if (!Main)
      Diags.error(SourceLoc(), "entry point '" + P.EntryPoint +
                                   "' is not defined");
    else if (!Main->Params.empty())
      Diags.error(Main->Loc, "entry point must take no parameters");

    for (const Function &F : P.Functions)
      verifyFunction(F);
  }

private:
  void verifyFunction(const Function &F) {
    Scope.clear();
    std::set<std::string> Dup;
    for (const std::string &N : F.Params) {
      Scope.insert(N);
      if (!Dup.insert(N).second)
        Diags.error(F.Loc, "duplicate parameter '" + N + "' in '" + F.Name +
                               "'");
    }
    for (const std::string &N : F.Locals) {
      Scope.insert(N);
      if (!Dup.insert(N).second)
        Diags.error(F.Loc, "duplicate local '" + N + "' in '" + F.Name + "'");
    }
    CurrentFunction = &F;
    if (!F.Body) {
      Diags.error(F.Loc, "function '" + F.Name + "' has no body");
      return;
    }
    verifyStmt(*F.Body, /*InLoop=*/false);
  }

  void verifyLValue(const LValue &LV, SourceLoc Loc) {
    switch (LV.K) {
    case LValue::Kind::Local:
      if (!Scope.count(LV.Name))
        Diags.error(Loc, "unknown local '" + LV.Name + "'");
      break;
    case LValue::Kind::Global: {
      const GlobalVar *G = P.findGlobal(LV.Name);
      if (!G)
        Diags.error(Loc, "unknown global '" + LV.Name + "'");
      else if (G->IsArray)
        Diags.error(Loc, "global array '" + LV.Name +
                             "' assigned without subscript");
      break;
    }
    case LValue::Kind::ArrayElem: {
      const GlobalVar *G = P.findGlobal(LV.Name);
      if (!G)
        Diags.error(Loc, "unknown global array '" + LV.Name + "'");
      else if (!G->IsArray)
        Diags.error(Loc, "subscript applied to scalar '" + LV.Name + "'");
      verifyExpr(*LV.Index);
      break;
    }
    }
  }

  void verifyExpr(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntConst:
      break;
    case ExprKind::LocalRead:
      if (!Scope.count(E.Name))
        Diags.error(E.Loc, "unknown local '" + E.Name + "'");
      break;
    case ExprKind::GlobalRead: {
      const GlobalVar *G = P.findGlobal(E.Name);
      if (!G)
        Diags.error(E.Loc, "unknown global '" + E.Name + "'");
      else if (G->IsArray)
        Diags.error(E.Loc, "global array '" + E.Name +
                               "' read without subscript");
      break;
    }
    case ExprKind::ArrayRead: {
      const GlobalVar *G = P.findGlobal(E.Name);
      if (!G)
        Diags.error(E.Loc, "unknown global array '" + E.Name + "'");
      else if (!G->IsArray)
        Diags.error(E.Loc, "subscript applied to scalar '" + E.Name + "'");
      verifyExpr(*E.Lhs);
      break;
    }
    case ExprKind::Unary:
      verifyExpr(*E.Lhs);
      break;
    case ExprKind::Binary:
      verifyExpr(*E.Lhs);
      verifyExpr(*E.Rhs);
      break;
    case ExprKind::Cond:
      verifyExpr(*E.Lhs);
      verifyExpr(*E.Rhs);
      verifyExpr(*E.Third);
      break;
    }
  }

  void verifyStmt(const Stmt &S, bool InLoop) {
    switch (S.Kind) {
    case StmtKind::Skip:
      break;
    case StmtKind::Assign:
      verifyLValue(S.Dest, S.Loc);
      verifyExpr(*S.Value);
      break;
    case StmtKind::Call: {
      unsigned Arity = 0;
      bool HasResult = false;
      if (const Function *F = P.findFunction(S.Callee)) {
        Arity = F->Params.size();
        HasResult = F->ReturnsValue;
      } else if (const ExternalDecl *E = P.findExternal(S.Callee)) {
        Arity = E->Arity;
        HasResult = E->HasResult;
      } else {
        Diags.error(S.Loc, "call to undefined function '" + S.Callee + "'");
        break;
      }
      if (S.Args.size() != Arity)
        Diags.error(S.Loc, "call to '" + S.Callee + "' passes " +
                               std::to_string(S.Args.size()) +
                               " arguments, expected " +
                               std::to_string(Arity));
      if (S.HasDest && !HasResult)
        Diags.error(S.Loc, "void function '" + S.Callee +
                               "' used in assignment");
      if (S.HasDest)
        verifyLValue(S.Dest, S.Loc);
      for (const ExprPtr &A : S.Args)
        verifyExpr(*A);
      break;
    }
    case StmtKind::Seq:
      verifyStmt(*S.First, InLoop);
      verifyStmt(*S.Second, InLoop);
      break;
    case StmtKind::If:
      verifyExpr(*S.Value);
      verifyStmt(*S.First, InLoop);
      verifyStmt(*S.Second, InLoop);
      break;
    case StmtKind::Loop:
      verifyStmt(*S.First, /*InLoop=*/true);
      break;
    case StmtKind::Break:
      if (!InLoop)
        Diags.error(S.Loc, "'break' outside of a loop");
      break;
    case StmtKind::Return:
      if (S.HasValue && !CurrentFunction->ReturnsValue)
        Diags.error(S.Loc, "void function '" + CurrentFunction->Name +
                               "' returns a value");
      if (!S.HasValue && CurrentFunction->ReturnsValue)
        Diags.error(S.Loc, "non-void function '" + CurrentFunction->Name +
                               "' returns no value");
      if (S.HasValue)
        verifyExpr(*S.Value);
      break;
    }
  }

  const Program &P;
  DiagnosticEngine &Diags;
  const Function *CurrentFunction = nullptr;
  std::set<std::string> Scope;
};

} // namespace

bool qcc::clight::verify(const Program &P, DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  Verifier(P, Diags).run();
  return Diags.errorCount() == Before;
}
