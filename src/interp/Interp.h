//===- interp/Interp.h - Clight small-step interpreter ----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The continuation-based small-step semantics of Clight core (Paper
/// section 4.2). Continuations follow the paper's grammar
///
///   K ::= Kstop | Kseq S K | Kloop S K | Kcall x f theta K
///
/// and transitions emit memory events call(f)/ret(f) on internal calls and
/// external events on calls to declared externals. The produced behavior's
/// trace is exactly what the weight machinery of `events` consumes; the
/// per-configuration weight W_{sigma,M}(S, K) of the paper is obtained by
/// running from that configuration and weighing the trace.
///
/// Determinism choices shared by every level of the pipeline (documented
/// in DESIGN.md): locals start at 0, shift counts are masked to 5 bits,
/// external functions return 0. Genuine undefined behavior — division by
/// zero, signed-division overflow, out-of-bounds array access — yields a
/// fail(t) behavior.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_INTERP_INTERP_H
#define QCC_INTERP_INTERP_H

#include "clight/Clight.h"
#include "events/Trace.h"
#include "events/TraceSink.h"

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace qcc {
namespace interp {

/// Default small-step fuel; enough for every corpus benchmark.
inline constexpr uint64_t DefaultFuel = 50'000'000;

/// Result of evaluating a pure expression: a value or a fault description.
struct EvalResult {
  bool Ok;
  uint32_t Value;
  std::string Fault;

  static EvalResult ok(uint32_t V) { return {true, V, ""}; }
  static EvalResult fault(std::string Reason) {
    return {false, 0, std::move(Reason)};
  }
};

/// Executes Clight core programs with the paper's continuation semantics.
class Interpreter {
public:
  /// \p Fuel bounds the number of small steps; exhausting it yields a
  /// diverging behavior carrying the trace prefix, with the outcome's
  /// Stop cause set to FuelExhausted. \p Sup, when given, is polled
  /// cooperatively every Supervisor::PollMask + 1 steps; a requested stop
  /// abandons the run with Outcome::stopped.
  explicit Interpreter(const clight::Program &P, uint64_t Fuel = DefaultFuel,
                       const Supervisor *Sup = nullptr)
      : P(P), Fuel(Fuel), Sup(Sup) {}

  /// Runs the entry point (main). Globals are (re)initialized first.
  Behavior run();

  /// Streaming variant: emits every event into \p Sink and returns only
  /// the outcome — nothing is materialized.
  Outcome run(TraceSink &Sink);

  /// Runs a single function call f(Args) from freshly initialized globals.
  /// The trace starts with call(f) and, on normal termination, ends with
  /// ret(f); the behavior's return code is f's result (0 for void).
  Behavior runFunctionCall(const std::string &Function,
                           const std::vector<uint32_t> &Args);

  /// Streaming variant of runFunctionCall.
  Outcome runFunctionCall(const std::string &Function,
                          const std::vector<uint32_t> &Args,
                          TraceSink &Sink);

  /// Number of small steps taken by the last run.
  uint64_t stepsTaken() const { return Steps; }

private:
  using Env = std::map<std::string, uint32_t>;

  /// One continuation frame (the paper's K, linearized into a stack).
  struct Cont {
    enum class Kind : uint8_t { Seq, Loop, Call } K;
    const clight::Stmt *Next = nullptr; ///< Seq: S2. Loop: the body.
    // Call frames:
    bool HasDest = false;
    const clight::LValue *Dest = nullptr;
    SymId Function = 0;
    Env SavedLocals;
  };

  EvalResult evalExpr(const clight::Expr &E);
  EvalResult readLValue(const clight::LValue &LV);
  bool writeLValue(const clight::LValue &LV, uint32_t Value,
                   std::string &Fault);
  void initGlobals();
  Env makeFrame(const clight::Function &F,
                const std::vector<uint32_t> &Args);
  Outcome execute(const clight::Function &Entry,
                  const std::vector<uint32_t> &Args, TraceSink &Sink);
  /// Interned id of an IR name, cached by the string's (stable) address.
  SymId sym(const std::string &Name);

  const clight::Program &P;
  uint64_t Fuel;
  const Supervisor *Sup = nullptr;
  uint64_t Steps = 0;

  std::map<std::string, std::vector<uint32_t>> Globals;
  Env Locals;
  std::vector<Cont> Stack;
  std::unordered_map<const std::string *, SymId> SymCache;
};

/// Convenience: runs \p P's entry point with \p Fuel under optional
/// supervision.
Behavior runProgram(const clight::Program &P, uint64_t Fuel = DefaultFuel,
                    const Supervisor *Sup = nullptr);

/// Streaming convenience: same run, events delivered to \p Sink.
Outcome runProgram(const clight::Program &P, TraceSink &Sink,
                   uint64_t Fuel = DefaultFuel,
                   const Supervisor *Sup = nullptr);

} // namespace interp
} // namespace qcc

#endif // QCC_INTERP_INTERP_H
