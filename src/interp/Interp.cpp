//===- interp/Interp.cpp - Clight small-step interpreter ------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include <cassert>
#include <limits>

using namespace qcc;
using namespace qcc::interp;
namespace cl = qcc::clight;

//===----------------------------------------------------------------------===//
// Expression evaluation (big-step; expressions are side-effect-free)
//===----------------------------------------------------------------------===//

EvalResult Interpreter::evalExpr(const cl::Expr &E) {
  using cl::ExprKind;
  switch (E.Kind) {
  case ExprKind::IntConst:
    return EvalResult::ok(E.IntValue);

  case ExprKind::LocalRead: {
    auto It = Locals.find(E.Name);
    if (It == Locals.end())
      return EvalResult::fault("read of unbound local '" + E.Name + "'");
    return EvalResult::ok(It->second);
  }

  case ExprKind::GlobalRead: {
    auto It = Globals.find(E.Name);
    if (It == Globals.end())
      return EvalResult::fault("read of unbound global '" + E.Name + "'");
    return EvalResult::ok(It->second[0]);
  }

  case ExprKind::ArrayRead: {
    auto It = Globals.find(E.Name);
    if (It == Globals.end())
      return EvalResult::fault("read of unbound array '" + E.Name + "'");
    EvalResult Idx = evalExpr(*E.Lhs);
    if (!Idx.Ok)
      return Idx;
    if (Idx.Value >= It->second.size())
      return EvalResult::fault("index " + std::to_string(Idx.Value) +
                               " out of bounds for '" + E.Name + "[" +
                               std::to_string(It->second.size()) + "]'");
    return EvalResult::ok(It->second[Idx.Value]);
  }

  case ExprKind::Unary: {
    EvalResult V = evalExpr(*E.Lhs);
    if (!V.Ok)
      return V;
    switch (E.UOp) {
    case cl::UnOp::Neg:
      return EvalResult::ok(0u - V.Value);
    case cl::UnOp::BoolNot:
      return EvalResult::ok(V.Value == 0 ? 1u : 0u);
    case cl::UnOp::BitNot:
      return EvalResult::ok(~V.Value);
    }
    return EvalResult::fault("bad unary operator");
  }

  case ExprKind::Binary: {
    EvalResult L = evalExpr(*E.Lhs);
    if (!L.Ok)
      return L;
    EvalResult R = evalExpr(*E.Rhs);
    if (!R.Ok)
      return R;
    uint32_t A = L.Value, B = R.Value;
    int32_t SA = static_cast<int32_t>(A), SB = static_cast<int32_t>(B);
    switch (E.BOp) {
    case cl::BinOp::Add: return EvalResult::ok(A + B);
    case cl::BinOp::Sub: return EvalResult::ok(A - B);
    case cl::BinOp::Mul: return EvalResult::ok(A * B);
    case cl::BinOp::DivU:
      if (B == 0)
        return EvalResult::fault("unsigned division by zero");
      return EvalResult::ok(A / B);
    case cl::BinOp::ModU:
      if (B == 0)
        return EvalResult::fault("unsigned remainder by zero");
      return EvalResult::ok(A % B);
    case cl::BinOp::DivS:
      if (SB == 0)
        return EvalResult::fault("signed division by zero");
      if (SA == std::numeric_limits<int32_t>::min() && SB == -1)
        return EvalResult::fault("signed division overflow");
      return EvalResult::ok(static_cast<uint32_t>(SA / SB));
    case cl::BinOp::ModS:
      if (SB == 0)
        return EvalResult::fault("signed remainder by zero");
      if (SA == std::numeric_limits<int32_t>::min() && SB == -1)
        return EvalResult::fault("signed remainder overflow");
      return EvalResult::ok(static_cast<uint32_t>(SA % SB));
    case cl::BinOp::And: return EvalResult::ok(A & B);
    case cl::BinOp::Or: return EvalResult::ok(A | B);
    case cl::BinOp::Xor: return EvalResult::ok(A ^ B);
    case cl::BinOp::Shl: return EvalResult::ok(A << (B & 31));
    case cl::BinOp::ShrU: return EvalResult::ok(A >> (B & 31));
    case cl::BinOp::ShrS:
      return EvalResult::ok(static_cast<uint32_t>(SA >> (B & 31)));
    case cl::BinOp::Eq: return EvalResult::ok(A == B);
    case cl::BinOp::Ne: return EvalResult::ok(A != B);
    case cl::BinOp::LtU: return EvalResult::ok(A < B);
    case cl::BinOp::LeU: return EvalResult::ok(A <= B);
    case cl::BinOp::GtU: return EvalResult::ok(A > B);
    case cl::BinOp::GeU: return EvalResult::ok(A >= B);
    case cl::BinOp::LtS: return EvalResult::ok(SA < SB);
    case cl::BinOp::LeS: return EvalResult::ok(SA <= SB);
    case cl::BinOp::GtS: return EvalResult::ok(SA > SB);
    case cl::BinOp::GeS: return EvalResult::ok(SA >= SB);
    }
    return EvalResult::fault("bad binary operator");
  }

  case ExprKind::Cond: {
    EvalResult C = evalExpr(*E.Lhs);
    if (!C.Ok)
      return C;
    return C.Value != 0 ? evalExpr(*E.Rhs) : evalExpr(*E.Third);
  }
  }
  return EvalResult::fault("bad expression kind");
}

EvalResult Interpreter::readLValue(const cl::LValue &LV) {
  switch (LV.K) {
  case cl::LValue::Kind::Local: {
    auto It = Locals.find(LV.Name);
    if (It == Locals.end())
      return EvalResult::fault("read of unbound local '" + LV.Name + "'");
    return EvalResult::ok(It->second);
  }
  case cl::LValue::Kind::Global: {
    auto It = Globals.find(LV.Name);
    if (It == Globals.end())
      return EvalResult::fault("read of unbound global '" + LV.Name + "'");
    return EvalResult::ok(It->second[0]);
  }
  case cl::LValue::Kind::ArrayElem: {
    auto It = Globals.find(LV.Name);
    if (It == Globals.end())
      return EvalResult::fault("read of unbound array '" + LV.Name + "'");
    EvalResult Idx = evalExpr(*LV.Index);
    if (!Idx.Ok)
      return Idx;
    if (Idx.Value >= It->second.size())
      return EvalResult::fault("index out of bounds for '" + LV.Name + "'");
    return EvalResult::ok(It->second[Idx.Value]);
  }
  }
  return EvalResult::fault("bad lvalue kind");
}

bool Interpreter::writeLValue(const cl::LValue &LV, uint32_t Value,
                              std::string &Fault) {
  switch (LV.K) {
  case cl::LValue::Kind::Local:
    // Locals are pre-bound at frame construction; writing an unknown name
    // would be a verifier bug, but stay defensive.
    Locals[LV.Name] = Value;
    return true;
  case cl::LValue::Kind::Global: {
    auto It = Globals.find(LV.Name);
    if (It == Globals.end()) {
      Fault = "write to unbound global '" + LV.Name + "'";
      return false;
    }
    It->second[0] = Value;
    return true;
  }
  case cl::LValue::Kind::ArrayElem: {
    auto It = Globals.find(LV.Name);
    if (It == Globals.end()) {
      Fault = "write to unbound array '" + LV.Name + "'";
      return false;
    }
    EvalResult Idx = evalExpr(*LV.Index);
    if (!Idx.Ok) {
      Fault = Idx.Fault;
      return false;
    }
    if (Idx.Value >= It->second.size()) {
      Fault = "index " + std::to_string(Idx.Value) + " out of bounds for '" +
              LV.Name + "[" + std::to_string(It->second.size()) + "]'";
      return false;
    }
    It->second[Idx.Value] = Value;
    return true;
  }
  }
  Fault = "bad lvalue kind";
  return false;
}

//===----------------------------------------------------------------------===//
// Program execution
//===----------------------------------------------------------------------===//

void Interpreter::initGlobals() {
  Globals.clear();
  for (const cl::GlobalVar &G : P.Globals) {
    std::vector<uint32_t> Cells = G.Init;
    Cells.resize(G.Size, 0);
    Globals[G.Name] = std::move(Cells);
  }
}

Interpreter::Env Interpreter::makeFrame(const cl::Function &F,
                                        const std::vector<uint32_t> &Args) {
  assert(Args.size() == F.Params.size() && "arity checked by verifier");
  Env Frame;
  for (size_t I = 0; I != F.Params.size(); ++I)
    Frame[F.Params[I]] = Args[I];
  for (const std::string &L : F.Locals)
    Frame[L] = 0; // Determinism choice shared by all pipeline levels.
  return Frame;
}

SymId Interpreter::sym(const std::string &Name) {
  auto [It, New] = SymCache.try_emplace(&Name, 0);
  if (New)
    It->second = SymbolTable::global().intern(Name);
  return It->second;
}

Behavior Interpreter::run() {
  RecordingSink R;
  return run(R).intoBehavior(std::move(R.Events));
}

Outcome Interpreter::run(TraceSink &Sink) {
  const cl::Function *Entry = P.findFunction(P.EntryPoint);
  if (!Entry)
    return Outcome::fails("entry point '" + P.EntryPoint +
                          "' is not defined");
  return execute(*Entry, {}, Sink);
}

Behavior Interpreter::runFunctionCall(const std::string &Function,
                                      const std::vector<uint32_t> &Args) {
  RecordingSink R;
  return runFunctionCall(Function, Args, R).intoBehavior(std::move(R.Events));
}

Outcome Interpreter::runFunctionCall(const std::string &Function,
                                     const std::vector<uint32_t> &Args,
                                     TraceSink &Sink) {
  const cl::Function *F = P.findFunction(Function);
  if (!F)
    return Outcome::fails("function '" + Function + "' is not defined");
  if (F->Params.size() != Args.size())
    return Outcome::fails("bad argument count for '" + Function + "'");
  return execute(*F, Args, Sink);
}

Outcome Interpreter::execute(const cl::Function &Entry,
                             const std::vector<uint32_t> &Args,
                             TraceSink &Sink) {
  initGlobals();
  Stack.clear();
  Steps = 0;

  Sink.onEvent(Event::call(sym(Entry.Name)));
  Locals = makeFrame(Entry, Args);

  // The execution mode: either about to execute Cur, or propagating a
  // completion (fall-through / break / return) up the continuation stack.
  enum class Mode : uint8_t { Exec, FallThrough, Breaking, Returning };
  Mode M = Mode::Exec;
  const cl::Stmt *Cur = Entry.Body.get();
  uint32_t ReturnValue = 0;
  // Interned names of the call chain, innermost last; used to emit ret
  // events.
  std::vector<SymId> CallChain = {sym(Entry.Name)};

  auto Fail = [&](std::string Reason) {
    return Outcome::fails(std::move(Reason));
  };

  for (;;) {
    if (++Steps > Fuel)
      return Outcome::exhausted();
    if (Supervisor::shouldPoll(Steps, Sup))
      return Outcome::stopped(Sup->cause());

    if (M == Mode::Exec) {
      switch (Cur->Kind) {
      case cl::StmtKind::Skip:
        M = Mode::FallThrough;
        break;

      case cl::StmtKind::Assign: {
        EvalResult V = evalExpr(*Cur->Value);
        if (!V.Ok)
          return Fail(V.Fault);
        std::string Fault;
        if (!writeLValue(Cur->Dest, V.Value, Fault))
          return Fail(Fault);
        M = Mode::FallThrough;
        break;
      }

      case cl::StmtKind::Call: {
        std::vector<uint32_t> ArgValues;
        ArgValues.reserve(Cur->Args.size());
        for (const cl::ExprPtr &A : Cur->Args) {
          EvalResult V = evalExpr(*A);
          if (!V.Ok)
            return Fail(V.Fault);
          ArgValues.push_back(V.Value);
        }
        if (const cl::Function *Callee = P.findFunction(Cur->Callee)) {
          // Internal call: push a Kcall frame, emit call(f), switch frames.
          SymId CalleeSym = sym(Callee->Name);
          Sink.onEvent(Event::call(CalleeSym));
          Cont C;
          C.K = Cont::Kind::Call;
          C.HasDest = Cur->HasDest;
          C.Dest = Cur->HasDest ? &Cur->Dest : nullptr;
          C.Function = CalleeSym;
          C.SavedLocals = std::move(Locals);
          Stack.push_back(std::move(C));
          CallChain.push_back(CalleeSym);
          Locals = makeFrame(*Callee, ArgValues);
          Cur = Callee->Body.get();
          // Stay in Exec mode.
          break;
        }
        // External call: one I/O event, result 0 by convention.
        std::vector<int32_t> IOArgs(ArgValues.begin(), ArgValues.end());
        Sink.onEvent(Event::external(sym(Cur->Callee),
                                     SymbolTable::global().internArgs(IOArgs),
                                     /*Result=*/0));
        if (Cur->HasDest) {
          std::string Fault;
          if (!writeLValue(Cur->Dest, 0, Fault))
            return Fail(Fault);
        }
        M = Mode::FallThrough;
        break;
      }

      case cl::StmtKind::Seq: {
        Cont C;
        C.K = Cont::Kind::Seq;
        C.Next = Cur->Second.get();
        Stack.push_back(std::move(C));
        Cur = Cur->First.get();
        break;
      }

      case cl::StmtKind::If: {
        EvalResult C = evalExpr(*Cur->Value);
        if (!C.Ok)
          return Fail(C.Fault);
        Cur = C.Value != 0 ? Cur->First.get() : Cur->Second.get();
        break;
      }

      case cl::StmtKind::Loop: {
        Cont C;
        C.K = Cont::Kind::Loop;
        C.Next = Cur->First.get(); // Body, for re-entry.
        Stack.push_back(std::move(C));
        Cur = Cur->First.get();
        break;
      }

      case cl::StmtKind::Break:
        M = Mode::Breaking;
        break;

      case cl::StmtKind::Return: {
        if (Cur->HasValue) {
          EvalResult V = evalExpr(*Cur->Value);
          if (!V.Ok)
            return Fail(V.Fault);
          ReturnValue = V.Value;
        } else {
          ReturnValue = 0;
        }
        M = Mode::Returning;
        break;
      }
      }
      continue;
    }

    // Completion propagation.
    if (Stack.empty()) {
      switch (M) {
      case Mode::FallThrough:
        // The entry function body always ends in an explicit return
        // (elaborator invariant), but tolerate a bare fall-through.
        [[fallthrough]];
      case Mode::Returning: {
        assert(!CallChain.empty());
        Sink.onEvent(Event::ret(CallChain.back()));
        return Outcome::converges(static_cast<int32_t>(ReturnValue));
      }
      case Mode::Breaking:
        return Fail("'break' escaped the function body");
      case Mode::Exec:
        break;
      }
      assert(false && "unreachable completion state");
    }

    Cont &Top = Stack.back();
    switch (M) {
    case Mode::FallThrough:
      switch (Top.K) {
      case Cont::Kind::Seq:
        Cur = Top.Next;
        Stack.pop_back();
        M = Mode::Exec;
        break;
      case Cont::Kind::Loop:
        Cur = Top.Next; // Re-enter the body; keep the Kloop frame.
        M = Mode::Exec;
        break;
      case Cont::Kind::Call: {
        // Fall-through out of a function body: void return.
        Sink.onEvent(Event::ret(Top.Function));
        Locals = std::move(Top.SavedLocals);
        if (Top.HasDest) {
          std::string Fault;
          if (!writeLValue(*Top.Dest, 0, Fault))
            return Fail(Fault);
        }
        Stack.pop_back();
        CallChain.pop_back();
        M = Mode::FallThrough;
        break;
      }
      }
      break;

    case Mode::Breaking:
      switch (Top.K) {
      case Cont::Kind::Seq:
        Stack.pop_back();
        break; // Keep unwinding.
      case Cont::Kind::Loop:
        Stack.pop_back();
        M = Mode::FallThrough; // The loop is done.
        break;
      case Cont::Kind::Call:
        return Fail("'break' escaped a function body");
      }
      break;

    case Mode::Returning:
      switch (Top.K) {
      case Cont::Kind::Seq:
      case Cont::Kind::Loop:
        Stack.pop_back();
        break; // Keep unwinding to the call frame.
      case Cont::Kind::Call: {
        Sink.onEvent(Event::ret(Top.Function));
        Locals = std::move(Top.SavedLocals);
        if (Top.HasDest) {
          std::string Fault;
          if (!writeLValue(*Top.Dest, ReturnValue, Fault))
            return Fail(Fault);
        }
        Stack.pop_back();
        CallChain.pop_back();
        M = Mode::FallThrough;
        break;
      }
      }
      break;

    case Mode::Exec:
      assert(false && "Exec handled above");
      break;
    }
  }
}

Behavior qcc::interp::runProgram(const cl::Program &P, uint64_t Fuel,
                                 const Supervisor *Sup) {
  Interpreter I(P, Fuel, Sup);
  return I.run();
}

Outcome qcc::interp::runProgram(const cl::Program &P, TraceSink &Sink,
                                uint64_t Fuel, const Supervisor *Sup) {
  Interpreter I(P, Fuel, Sup);
  return I.run(Sink);
}
