//===- batch/ThreadPool.cpp - Work-stealing thread pool -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "batch/ThreadPool.h"

#include "support/FailPoint.h"

using namespace qcc;
using namespace qcc::batch;

WorkStealingPool::WorkStealingPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Queues.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Queues.push_back(std::make_unique<Queue>());
  Threads.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> G(BatchM);
    Stop = true;
  }
  WorkCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

bool WorkStealingPool::popLocal(unsigned Me, size_t &Item) {
  Queue &Q = *Queues[Me];
  std::lock_guard<std::mutex> G(Q.M);
  if (Q.Items.empty())
    return false;
  Item = Q.Items.front();
  Q.Items.pop_front();
  return true;
}

bool WorkStealingPool::steal(unsigned Me, size_t &Item) {
  unsigned N = static_cast<unsigned>(Queues.size());
  for (unsigned Off = 1; Off != N; ++Off) {
    Queue &Q = *Queues[(Me + Off) % N];
    std::lock_guard<std::mutex> G(Q.M);
    if (Q.Items.empty())
      continue;
    Item = Q.Items.back();
    Q.Items.pop_back();
    return true;
  }
  return false;
}

void WorkStealingPool::drain(unsigned Me,
                             const std::function<void(size_t)> &F) {
  size_t Item;
  for (;;) {
    if (!popLocal(Me, Item) && !steal(Me, Item))
      return;
    F(Item);
    Remaining.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void WorkStealingPool::workerLoop(unsigned Me) {
  std::unique_lock<std::mutex> L(BatchM);
  uint64_t Seen = 0;
  for (;;) {
    WorkCv.wait(L, [this, Seen] {
      return Stop || Generation != Seen || !Tasks.empty();
    });
    // Submitted tasks first: a shutdown (Stop) still finishes the queue,
    // so a waiter blocked on a submitted task's completion can never be
    // stranded — cancellation makes tasks fast, the pool makes them run.
    if (!Tasks.empty()) {
      std::function<void()> T = std::move(Tasks.front());
      Tasks.pop_front();
      ++RunningTasks;
      L.unlock();
      T();
      L.lock();
      if (--RunningTasks == 0 && Tasks.empty())
        IdleCv.notify_all();
      continue;
    }
    if (Stop)
      return;
    Seen = Generation;
    const std::function<void(size_t)> *F = Body;
    ++Active;
    L.unlock();
    drain(Me, *F);
    L.lock();
    // The caller may return only when no worker can still hold a
    // reference to this generation's body.
    if (--Active == 0 && Remaining.load(std::memory_order_acquire) == 0)
      DoneCv.notify_all();
  }
}

void WorkStealingPool::submit(std::function<void()> Task) {
  // "pool.submit": delay models a saturated queue (admission tests lean
  // on it to hold a job in flight deterministically); crash models a
  // process dying with work queued. Err/Short are meaningless for an
  // in-memory enqueue and are ignored — the task is always queued.
  (void)failpoint::fire("pool.submit");
  {
    std::lock_guard<std::mutex> G(BatchM);
    Tasks.push_back(std::move(Task));
  }
  WorkCv.notify_one();
}

void WorkStealingPool::waitTasksIdle() {
  std::unique_lock<std::mutex> L(BatchM);
  IdleCv.wait(L, [this] { return Tasks.empty() && RunningTasks == 0; });
}

size_t WorkStealingPool::taskCount() const {
  std::lock_guard<std::mutex> G(BatchM);
  return Tasks.size() + RunningTasks;
}

void WorkStealingPool::parallelFor(size_t N,
                                   const std::function<void(size_t)> &F) {
  if (N == 0)
    return;
  // Seed every queue before publishing the new generation: no worker can
  // be inside drain() between batches (the previous call waited for
  // Active == 0), and a worker woken before its queue is seeded would
  // park for good, stranding the late items.
  Remaining.store(N, std::memory_order_release);
  unsigned W = static_cast<unsigned>(Queues.size());
  for (size_t I = 0; I != N; ++I) {
    Queue &Q = *Queues[I % W];
    std::lock_guard<std::mutex> G(Q.M);
    Q.Items.push_back(I);
  }
  {
    std::lock_guard<std::mutex> G(BatchM);
    Body = &F;
    ++Generation;
  }
  WorkCv.notify_all();

  std::unique_lock<std::mutex> L(BatchM);
  DoneCv.wait(L, [this] {
    return Active == 0 && Remaining.load(std::memory_order_acquire) == 0;
  });
  Body = nullptr;
}
