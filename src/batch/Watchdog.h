//===- batch/Watchdog.h - Deadline enforcement thread -----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deadline watchdog: one background thread that periodically calls
/// Supervisor::enforceDeadline on every registered token. Centralizing the
/// clock reads here keeps the interpreter poll points clock-free (one
/// relaxed atomic load), so supervision stays cheap on the hot path; the
/// enforcement latency is one watchdog tick plus the poll granularity.
///
/// The thread is started lazily on the first watch() and joined in the
/// destructor, so a batch run without deadlines never pays for it.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_BATCH_WATCHDOG_H
#define QCC_BATCH_WATCHDOG_H

#include "support/Supervision.h"

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace qcc {
namespace batch {

/// Scans registered supervisors every tick and fires expired deadlines.
/// Thread-safe: workers watch/unwatch their per-job tokens concurrently.
class Watchdog {
public:
  explicit Watchdog(uint64_t TickMillis = 2) : TickMillis(TickMillis) {}
  ~Watchdog();

  Watchdog(const Watchdog &) = delete;
  Watchdog &operator=(const Watchdog &) = delete;

  /// Registers \p S for deadline enforcement (starts the thread if this
  /// is the first registration).
  void watch(Supervisor *S);

  /// Deregisters \p S. After return the watchdog no longer touches it, so
  /// the token may be destroyed or reset.
  void unwatch(Supervisor *S);

  /// Tokens currently under watch (for tests).
  size_t watchedCount() const;

private:
  void run();

  const uint64_t TickMillis;
  mutable std::mutex M;
  std::condition_variable CV;
  std::vector<Supervisor *> Watched;
  bool ShuttingDown = false;
  bool Started = false;
  std::thread Thread;
};

} // namespace batch
} // namespace qcc

#endif // QCC_BATCH_WATCHDOG_H
