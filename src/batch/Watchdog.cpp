//===- batch/Watchdog.cpp - Deadline enforcement thread -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "batch/Watchdog.h"

#include <algorithm>

using namespace qcc;
using namespace qcc::batch;

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> G(M);
    ShuttingDown = true;
  }
  CV.notify_all();
  if (Thread.joinable())
    Thread.join();
}

void Watchdog::watch(Supervisor *S) {
  std::lock_guard<std::mutex> G(M);
  Watched.push_back(S);
  if (!Started) {
    Started = true;
    Thread = std::thread([this] { run(); });
  }
}

void Watchdog::unwatch(Supervisor *S) {
  std::lock_guard<std::mutex> G(M);
  Watched.erase(std::remove(Watched.begin(), Watched.end(), S),
                Watched.end());
}

size_t Watchdog::watchedCount() const {
  std::lock_guard<std::mutex> G(M);
  return Watched.size();
}

void Watchdog::run() {
  std::unique_lock<std::mutex> G(M);
  while (!ShuttingDown) {
    // enforceDeadline is a clock read plus at most one atomic CAS, so
    // holding the lock across the scan keeps watch/unwatch simple
    // without stalling the workers measurably.
    for (Supervisor *S : Watched)
      S->enforceDeadline();
    CV.wait_for(G, std::chrono::milliseconds(TickMillis),
                [this] { return ShuttingDown; });
  }
}
