//===- batch/ThreadPool.h - Work-stealing thread pool -----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the batch-verification engine.
/// Work items are indices into a caller-owned job list; they are seeded
/// round-robin into one deque per worker, each worker drains its own
/// deque from the front and, when empty, steals from the back of its
/// neighbours'. Stealing from the opposite end keeps contention low and
/// lets a worker stuck behind a heavy compilation shed the rest of its
/// share to idle threads — the property that makes corpus batches (one
/// big CertiKOS file next to many small Table 2 drivers) load-balance.
///
/// The pool is generation-based: `parallelFor` publishes a body and a
/// remaining-count, wakes every worker, and blocks until all items ran
/// *and* every participating worker parked again (so no thread can still
/// be touching a previous generation's body when the next one is seeded).
///
/// Long-lived front ends (the qccd daemon) that produce work one job at
/// a time instead of as a closed index range use `submit`: a shared FIFO
/// of standalone tasks drained by the same workers. Submitted tasks and
/// parallelFor batches may interleave freely — workers prefer pending
/// tasks, then fall through to the current generation's index range — so
/// a daemon serving connections and an in-process batch share one pool
/// without either starving the other for good.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_BATCH_THREADPOOL_H
#define QCC_BATCH_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qcc {
namespace batch {

/// A fixed-size pool of worker threads executing index-based parallel
/// loops with work stealing. One pool may run many `parallelFor` batches;
/// batches never overlap (the call blocks).
class WorkStealingPool {
public:
  /// Spawns \p Threads workers (at least one).
  explicit WorkStealingPool(unsigned Threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool &) = delete;
  WorkStealingPool &operator=(const WorkStealingPool &) = delete;

  unsigned threadCount() const {
    return static_cast<unsigned>(Threads.size());
  }

  /// Runs Body(I) for every I in [0, N), distributed over the pool.
  /// Blocks until every item completed. Body must be safe to invoke
  /// concurrently from multiple threads on distinct indices.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

  /// Enqueues one standalone task for execution on a pool worker and
  /// returns immediately. Tasks run in FIFO order relative to each other.
  /// The destructor finishes every submitted task before joining (the
  /// shutdown discipline: cancel the work's supervisors first, then
  /// destroy the pool — a cancelled task drains at its next poll point).
  void submit(std::function<void()> Task);

  /// Blocks until no submitted task is pending or running. Used by tests
  /// and by shutdown paths that must observe a quiesced pool.
  void waitTasksIdle();

  /// Submitted tasks pending or running (snapshot, for tests).
  size_t taskCount() const;

private:
  /// One worker's deque. Owner pops the front; thieves pop the back.
  struct Queue {
    std::mutex M;
    std::deque<size_t> Items;
  };

  void workerLoop(unsigned Me);
  /// Runs items until neither the local deque nor any victim has work.
  void drain(unsigned Me, const std::function<void(size_t)> &Body);
  bool popLocal(unsigned Me, size_t &Item);
  bool steal(unsigned Me, size_t &Item);

  std::vector<std::unique_ptr<Queue>> Queues;
  std::vector<std::thread> Threads;

  // Batch and task hand-off state, guarded by BatchM.
  mutable std::mutex BatchM;
  std::condition_variable WorkCv; ///< Wakes workers for work of any kind.
  std::condition_variable DoneCv; ///< Wakes the caller on completion.
  std::condition_variable IdleCv; ///< Wakes waitTasksIdle.
  const std::function<void(size_t)> *Body = nullptr;
  uint64_t Generation = 0;
  unsigned Active = 0; ///< Workers currently inside drain().
  bool Stop = false;
  std::deque<std::function<void()>> Tasks; ///< Submitted, not yet started.
  unsigned RunningTasks = 0; ///< Submitted tasks currently executing.

  std::atomic<size_t> Remaining{0}; ///< Items not yet finished.
};

} // namespace batch
} // namespace qcc

#endif // QCC_BATCH_THREADPOOL_H
