//===- batch/Batch.cpp - Parallel batch-verification engine ---------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "batch/Batch.h"

#include "batch/ThreadPool.h"
#include "batch/Watchdog.h"
#include "programs/Corpus.h"
#include "store/Serialize.h"
#include "support/Hash.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <thread>

using namespace qcc;
using namespace qcc::batch;

//===----------------------------------------------------------------------===//
// Result cache
//===----------------------------------------------------------------------===//

std::shared_ptr<const ProgramResult> ResultCache::lookup(const JobKey &Key) {
  std::lock_guard<std::mutex> G(M);
  auto It = Map.find(Key.Primary);
  if (It == Map.end()) {
    ++Counters.Misses;
    return nullptr;
  }
  if (It->second.Verify != Key.Verify) {
    // The primary hash collided but the independent hash disagrees: two
    // distinct inputs share a bucket. Serving the stored verdict here
    // would attribute one program's result to another — the exact bug the
    // verification hash exists to exclude. A miss re-verifies honestly.
    ++Counters.Collisions;
    ++Counters.Misses;
    return nullptr;
  }
  ++Counters.Hits;
  return It->second.Result;
}

void ResultCache::insert(const JobKey &Key,
                         std::shared_ptr<const ProgramResult> Result) {
  std::lock_guard<std::mutex> G(M);
  Map[Key.Primary] = Entry{Key.Verify, std::move(Result)};
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> G(M);
  return Counters;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> G(M);
  return Map.size();
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> G(M);
  Map.clear();
  Counters = {};
}

const char *qcc::batch::jobStatusName(JobStatus S) {
  switch (S) {
  case JobStatus::Ok: return "ok";
  case JobStatus::Failed: return "failed";
  case JobStatus::Quarantined: return "quarantined";
  case JobStatus::SkippedFromJournal: return "skipped";
  case JobStatus::Cancelled: return "cancelled";
  }
  return "?";
}

JobKey qcc::batch::jobKey(const BatchJob &J, bool CheckTheorem1) {
  Hash128 H;
  H.str(J.Source);
  const driver::CompilerOptions &O = J.Options;
  H.u64(O.Defines.size());
  for (const auto &[Name, Value] : O.Defines)
    H.str(Name).u64(Value);
  H.boolean(O.Optimize)
      .boolean(O.Inline)
      .boolean(O.TailCalls)
      .boolean(O.ValidateTranslation)
      .boolean(O.AnalyzeBounds)
      .boolean(CheckTheorem1)
      .u64(O.ValidationFuel);
  // Seeded specs hash by their canonical rendering (bound expressions are
  // immutable trees with a stable printer).
  H.u64(O.SeededSpecs.size());
  for (const auto &[F, Spec] : O.SeededSpecs) {
    H.str(F).str(Spec.Pre->str()).str(Spec.Post->str());
    H.u64(Spec.ResultFacts.size());
    for (const logic::Cmp &Fact : Spec.ResultFacts)
      H.str(Fact.str());
  }
  return JobKey{H.primary(), H.verify()};
}

//===----------------------------------------------------------------------===//
// Single-job verification
//===----------------------------------------------------------------------===//

ProgramResult qcc::batch::verifyOne(const BatchJob &Job,
                                    bool CheckTheorem1) {
  return verifyOne(Job, CheckTheorem1, nullptr, false);
}

ProgramResult qcc::batch::verifyOne(const BatchJob &Job, bool CheckTheorem1,
                                    Supervisor *Sup,
                                    bool KeepProofArtifacts) {
  auto Start = std::chrono::steady_clock::now();
  ProgramResult R;
  R.Id = Job.Id;

  DiagnosticEngine Diags;
  driver::PassStats Stats;
  driver::CompilerOptions Opts = Job.Options;
  Opts.Supervision = Sup;
  auto C = driver::compile(Job.Source, Diags, Opts, &Stats);
  R.Metrics.PassMicros = std::move(Stats.PassMicros);
  R.Metrics.ReplayedEvents = std::move(Stats.ReplayedEvents);
  R.Metrics.ProofNodes = Stats.ProofNodes;
  R.Metrics.ProofCheckMicros = Stats.ProofCheckMicros;
  R.Metrics.ProofRuleNodes = std::move(Stats.ProofRuleNodes);

  if (C) {
    R.Ok = true;
    for (const auto &[F, Spec] : C->Bounds.Gamma) {
      FunctionReport FR;
      FR.Function = F;
      if (logic::BoundExpr B = C->Bounds.callBound(F))
        FR.SymbolicBound = B->str();
      FR.ConcreteBytes = driver::concreteCallBound(*C, F);
      R.Bounds.push_back(std::move(FR));
    }
    R.SkippedRecursive = C->Bounds.SkippedRecursive;
    if (KeepProofArtifacts)
      // Serialize while the Clight program (whose statements the
      // derivations reference) is still alive; the blob outlives it.
      // Straight from the flat form the checker walked — same bytes the
      // tree encoder would emit, no pointer chase.
      R.ProofBlob = store::encodeProofsForest(C->Bounds.Gamma,
                                              C->Bounds.Forest, C->Clight);

    if (CheckTheorem1) {
      auto MainBound = driver::concreteCallBound(*C, "main");
      if (MainBound && *MainBound >= 4) {
        R.Theorem1Checked = true;
        R.Theorem1StackBytes = static_cast<uint32_t>(*MainBound - 4);
        // Theorem 1 gets ten times the per-level validation fuel (the
        // x86 default at default options), so its budget scales with the
        // job's rather than being a separate hardcoded knob.
        measure::Measurement M = driver::runWithStackSize(
            *C, R.Theorem1StackBytes, Opts.ValidationFuel * 10, Sup);
        R.Theorem1Ok = M.Ok;
        if (!M.Ok) {
          R.Ok = false;
          if (M.Stop != StopCause::None) {
            // The run stopped short of a verdict: fuel, deadline, memory
            // or cancellation. Explicitly NOT "Theorem 1 violated" — a
            // budget stop refutes nothing (DESIGN.md section 5d).
            R.Stop = M.Stop;
            Diags.error(SourceLoc(),
                        std::string("Theorem 1 check stopped: ") +
                            stopCauseName(M.Stop));
          } else {
            Diags.error(SourceLoc(),
                        "Theorem 1 violated at stack size " +
                            std::to_string(R.Theorem1StackBytes) + ": " +
                            M.Error);
          }
        }
      }
    }
  } else if (Sup && Sup->stopRequested()) {
    R.Stop = Sup->cause();
  }

  R.Status = R.Stop == StopCause::None
                 ? (R.Ok ? JobStatus::Ok : JobStatus::Failed)
                 : (R.Stop == StopCause::Cancelled ? JobStatus::Cancelled
                                                   : JobStatus::Quarantined);
  R.Diagnostics = Diags.str();
  auto End = std::chrono::steady_clock::now();
  R.Metrics.TotalMicros =
      std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
          .count();
  return R;
}

//===----------------------------------------------------------------------===//
// The engine
//===----------------------------------------------------------------------===//

bool BatchResult::allOk() const {
  return std::all_of(Programs.begin(), Programs.end(),
                     [](const ProgramResult &R) { return R.Ok; });
}

unsigned BatchResult::storeHits() const {
  return static_cast<unsigned>(
      std::count_if(Programs.begin(), Programs.end(),
                    [](const ProgramResult &R) { return R.StoreHit; }));
}

unsigned BatchResult::countStatus(JobStatus S) const {
  return static_cast<unsigned>(
      std::count_if(Programs.begin(), Programs.end(),
                    [S](const ProgramResult &R) { return R.Status == S; }));
}

int BatchResult::exitCode() const {
  bool NoVerdict = false, Refuted = false;
  for (const ProgramResult &P : Programs) {
    if (P.Status == JobStatus::Quarantined ||
        P.Status == JobStatus::Cancelled)
      NoVerdict = true;
    else if (!P.Ok) // Failed, or a journaled failure replayed as skipped.
      Refuted = true;
  }
  return NoVerdict ? 3 : Refuted ? 1 : 0;
}

//===----------------------------------------------------------------------===//
// Resume journal
//===----------------------------------------------------------------------===//

namespace {

/// The resume journal: "<status> <32-digit-hex jobKey>" lines (primary
/// then verification hash, concatenated), appended and flushed as each
/// job reaches a definitive verdict, so a killed run loses at most the
/// jobs that were still in flight. Budget-stopped jobs are never
/// journaled — the rerun must attempt them again. Legacy 16-hex lines
/// (pre-collision-guard journals) are still read; they match on the
/// primary hash alone.
class Journal {
public:
  explicit Journal(const std::string &Path) {
    std::ifstream In(Path);
    std::string Status, Hex;
    while (In >> Status >> Hex) {
      bool Ok;
      if (Status == "ok")
        Ok = true;
      else if (Status == "failed")
        Ok = false;
      else
        continue; // Unknown words: tolerated for forward compatibility.
      if (Hex.size() != 16 && Hex.size() != 32)
        continue;
      uint64_t Primary =
          std::strtoull(Hex.substr(0, 16).c_str(), nullptr, 16);
      Entry E;
      E.Ok = Ok;
      if (Hex.size() == 32) {
        E.Verify = std::strtoull(Hex.substr(16).c_str(), nullptr, 16);
        E.HasVerify = true;
      }
      Done[Primary] = E;
    }
    In.close();
    Out.open(Path, std::ios::app);
  }

  /// The recorded verdict for \p Key, if any (true = ok). An entry whose
  /// verification hash disagrees is a primary-hash collision: ignored, so
  /// the differing job re-verifies instead of replaying a foreign verdict.
  /// Locked: record() now mutates Done concurrently (idempotence set).
  std::optional<bool> lookup(const JobKey &Key) const {
    std::lock_guard<std::mutex> G(M);
    auto It = Done.find(Key.Primary);
    if (It == Done.end())
      return std::nullopt;
    if (It->second.HasVerify && It->second.Verify != Key.Verify)
      return std::nullopt;
    return It->second.Ok;
  }

  /// Appends and flushes one definitive verdict. Idempotent: a key
  /// already present (loaded at open, or recorded earlier in this run) is
  /// not re-appended, so the post-quiesce re-scan can blanket every
  /// completed slot without duplicating the inline records.
  void record(const JobKey &Key, bool Ok) {
    std::lock_guard<std::mutex> G(M);
    auto It = Done.find(Key.Primary);
    if (It != Done.end() &&
        (!It->second.HasVerify || It->second.Verify == Key.Verify))
      return;
    Done[Key.Primary] = Entry{Key.Verify, /*HasVerify=*/true, Ok};
    char Line[48];
    std::snprintf(Line, sizeof Line, " %016llx%016llx\n",
                  static_cast<unsigned long long>(Key.Primary),
                  static_cast<unsigned long long>(Key.Verify));
    Out << (Ok ? "ok" : "failed") << Line;
    Out.flush();
  }

private:
  struct Entry {
    uint64_t Verify = 0;
    bool HasVerify = false;
    bool Ok = false;
  };
  mutable std::mutex M;
  std::ofstream Out;
  std::unordered_map<uint64_t, Entry> Done;
};

} // namespace

//===----------------------------------------------------------------------===//
// One governed job, decoupled from the batch loop
//===----------------------------------------------------------------------===//

ProgramResult qcc::batch::runSupervisedJob(const BatchJob &J,
                                           const BatchOptions &Options,
                                           Watchdog *Dog,
                                           uint64_t *ChargedBytes) {
  JobKey Key = jobKey(J, Options.CheckTheorem1);
  if (ChargedBytes)
    *ChargedBytes = 0;

  if (Options.Interrupt && Options.Interrupt->stopRequested()) {
    ProgramResult R;
    R.Id = J.Id;
    R.Status = JobStatus::Cancelled;
    R.Stop = Options.Interrupt->cause();
    R.Diagnostics = "cancelled before start";
    return R;
  }
  if (Options.Cache) {
    if (auto Hit = Options.Cache->lookup(Key)) {
      ProgramResult R = *Hit;
      R.Id = J.Id; // Identical content may carry another id.
      R.CacheHit = true;
      return R;
    }
  }

  // Per-job supervisor, parented to the caller's interrupt token (the
  // batch-wide SIGINT token, or a qccd connection's supervisor) so one
  // cancel upstream drains this job at its next poll point.
  Supervisor Sup(Options.Interrupt);
  uint64_t Charged = 0;

  ProgramResult Final;
  bool Served = false;
  if (Options.Store) {
    // Store I/O is charged against the same per-job memory budget the
    // sinks and the proof checker charge; an entry too large for the
    // budget degrades to a miss (Attempt resets the supervisor below).
    if (Options.MemoryBudgetBytes)
      Sup.setMemoryBudget(Options.MemoryBudgetBytes);
    if (auto Hit = Options.Store->fetch(Key, J, &Sup)) {
      Final = *Hit;
      Final.Id = J.Id;
      Final.StoreHit = true;
      Served = true;
      Charged += Sup.chargedBytes();
      if (Options.Cache)
        Options.Cache->insert(Key, std::move(Hit));
    }
  }

  if (!Served) {
    // Sup.reset() clears the charge counter between attempts, so billing
    // accumulates per attempt, plus whatever the final store put charges
    // on top of the last attempt's snapshot.
    uint64_t LastAttemptCharge = 0;
    auto Attempt = [&](uint64_t Fuel) {
      Sup.reset();
      if (Options.MemoryBudgetBytes)
        Sup.setMemoryBudget(Options.MemoryBudgetBytes);
      if (Dog) {
        Sup.armDeadline(Options.DeadlineMillis);
        Dog->watch(&Sup);
      }
      BatchJob A = J;
      A.Options.ValidationFuel = Fuel;
      bool KeepProofs = Options.Store != nullptr;
      ProgramResult R =
          Options.Incremental
              ? Options.Incremental->verify(A, Options.CheckTheorem1, &Sup,
                                            KeepProofs)
              : verifyOne(A, Options.CheckTheorem1, &Sup, KeepProofs);
      if (Dog)
        Dog->unwatch(&Sup);
      LastAttemptCharge = Sup.chargedBytes();
      Charged += LastAttemptCharge;
      return R;
    };

    ProgramResult R = Attempt(J.Options.ValidationFuel);
    uint64_t SpentMicros = R.Metrics.TotalMicros;
    unsigned Tries = 0;
    while (R.Status == JobStatus::Quarantined && Tries < Options.Retries) {
      // One bounded retry at a quarter of the fuel: a transient stop
      // (contended deadline on an oversubscribed pool) gets a second,
      // cheaper chance; a genuinely divergent job exhausts again and is
      // quarantined for good.
      ++Tries;
      R = Attempt(std::max<uint64_t>(Supervisor::PollMask + 1,
                                     J.Options.ValidationFuel / 4));
      R.Retries = Tries;
      SpentMicros += R.Metrics.TotalMicros;
    }
    R.Metrics.TotalMicros = SpentMicros; // Wall clock across all attempts.

    bool Definitive =
        R.Status == JobStatus::Ok || R.Status == JobStatus::Failed;
    if (Definitive && (Options.Cache || Options.Store)) {
      auto Shared = std::make_shared<ProgramResult>(R);
      if (Options.Cache)
        Options.Cache->insert(Key, Shared);
      if (Options.Store)
        // Runs to completion even when the interrupt has fired: this
        // job's verdict is already paid for, and the SIGINT drain
        // contract is that every definitive in-flight result reaches the
        // journal AND the store before the process exits.
        Options.Store->put(Key, *Shared, &Sup);
      Charged += Sup.chargedBytes() - LastAttemptCharge;
    }
    Final = std::move(R);
  }

  if (ChargedBytes)
    *ChargedBytes = Charged;
  return Final;
}

BatchResult qcc::batch::runBatch(const std::vector<BatchJob> &Jobs,
                                 const BatchOptions &Options) {
  BatchResult Out;
  Out.Programs.resize(Jobs.size());
  unsigned Workers = Options.Jobs
                         ? Options.Jobs
                         : std::max(1u, std::thread::hardware_concurrency());
  Out.Jobs = Workers;
  CacheStats Before = Options.Cache ? Options.Cache->stats() : CacheStats{};
  auto Start = std::chrono::steady_clock::now();

  std::optional<Journal> Resume;
  if (!Options.JournalPath.empty())
    Resume.emplace(Options.JournalPath);
  std::optional<Watchdog> Dog;
  if (Options.DeadlineMillis)
    // Tick at ~1/8 of the deadline (clamped to [2ms, 250ms]): tight
    // deadlines get millisecond enforcement, generous ones don't pay for
    // a thread waking 500 times a second on a saturated pool.
    Dog.emplace(std::clamp<uint64_t>(Options.DeadlineMillis / 8, 2, 250));

  auto RunOne = [&](size_t I) {
    const BatchJob &J = Jobs[I];
    ProgramResult &Slot = Out.Programs[I];
    JobKey Key = jobKey(J, Options.CheckTheorem1);

    if (Resume) {
      if (auto Recorded = Resume->lookup(Key)) {
        Slot.Id = J.Id;
        Slot.Ok = *Recorded;
        Slot.Status = JobStatus::SkippedFromJournal;
        Slot.Diagnostics =
            "skipped: finished in a previous run (resume journal)";
        return;
      }
    }

    Slot = runSupervisedJob(J, Options, Dog ? &*Dog : nullptr);

    // The completion-vs-flush window the drain re-scan below closes: the
    // verdict exists here, but is not yet in the journal. The regression
    // tests cancel the interrupt token at this barrier.
    if (Options.CompletionBarrier)
      Options.CompletionBarrier(Slot);

    if (Resume &&
        (Slot.Status == JobStatus::Ok || Slot.Status == JobStatus::Failed))
      Resume->record(Key, Slot.Ok);
  };

  if (Workers <= 1 || Jobs.size() <= 1) {
    for (size_t I = 0; I != Jobs.size(); ++I)
      RunOne(I);
  } else {
    WorkStealingPool Pool(Workers);
    Pool.parallelFor(Jobs.size(), RunOne);
  }

  // SIGINT-drain completeness: after the pool quiesces, re-scan every
  // completed slot and journal any definitive verdict the inline path
  // did not record (Journal::record is idempotent, so double recording
  // is impossible). This closes two holes: a verdict served warm from
  // the cache or store used to bypass the journal entirely — an
  // interrupted run would re-fetch (or, after eviction, re-verify) work
  // it had already finished — and any future completion path that
  // returns before the inline record cannot silently drop its verdict.
  if (Resume)
    for (size_t I = 0; I != Jobs.size(); ++I) {
      const ProgramResult &P = Out.Programs[I];
      if (P.Status == JobStatus::Ok || P.Status == JobStatus::Failed)
        Resume->record(jobKey(Jobs[I], Options.CheckTheorem1), P.Ok);
    }

  auto End = std::chrono::steady_clock::now();
  Out.WallMicros =
      std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
          .count();
  for (const ProgramResult &P : Out.Programs)
    if (!P.CacheHit && !P.StoreHit &&
        P.Status != JobStatus::SkippedFromJournal)
      Out.FreshProofNodes += P.Metrics.ProofNodes;
  if (Options.Cache) {
    CacheStats After = Options.Cache->stats();
    Out.Cache.Hits = After.Hits - Before.Hits;
    Out.Cache.Misses = After.Misses - Before.Misses;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// JSON serialization
//===----------------------------------------------------------------------===//

namespace {

void jsonEscape(const std::string &S, std::string &Out) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        snprintf(Buf, sizeof Buf, "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void jsonStr(const std::string &S, std::string &Out) {
  Out += '"';
  jsonEscape(S, Out);
  Out += '"';
}

void jsonKey(const char *K, std::string &Out) {
  Out += '"';
  Out += K;
  Out += "\":";
}

/// {"name": <pass>, "<field>": <count>} pairs list.
void jsonPairs(const char *Field,
               const std::vector<std::pair<std::string, uint64_t>> &Pairs,
               std::string &Out) {
  Out += '[';
  bool First = true;
  for (const auto &[Name, Count] : Pairs) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":";
    jsonStr(Name, Out);
    Out += ",";
    jsonKey(Field, Out);
    Out += std::to_string(Count);
    Out += '}';
  }
  Out += ']';
}

} // namespace

std::string qcc::batch::metricsJson(const BatchResult &R,
                                    JsonDetail Detail) {
  bool Timings = Detail == JsonDetail::Full;
  std::string Out;
  Out += "{\"schema\":\"qcc-batch-metrics-v1\",";
  jsonKey("exit_code", Out);
  Out += std::to_string(R.exitCode()) + ",";
  jsonKey("quarantined", Out);
  Out += std::to_string(R.countStatus(JobStatus::Quarantined)) + ",";
  jsonKey("cancelled", Out);
  Out += std::to_string(R.countStatus(JobStatus::Cancelled)) + ",";
  jsonKey("skipped", Out);
  Out += std::to_string(R.countStatus(JobStatus::SkippedFromJournal)) + ",";
  if (Timings) {
    jsonKey("jobs", Out);
    Out += std::to_string(R.Jobs) + ",";
    jsonKey("wall_us", Out);
    Out += std::to_string(R.WallMicros) + ",";
    jsonKey("cache", Out);
    Out += "{\"hits\":" + std::to_string(R.Cache.Hits) +
           ",\"misses\":" + std::to_string(R.Cache.Misses) +
           ",\"collisions\":" + std::to_string(R.Cache.Collisions) + "},";
    jsonKey("store_hits", Out);
    Out += std::to_string(R.storeHits()) + ",";
    jsonKey("fresh_proof_nodes", Out);
    Out += std::to_string(R.FreshProofNodes) + ",";
  }
  jsonKey("programs", Out);
  Out += '[';
  for (size_t I = 0; I != R.Programs.size(); ++I) {
    const ProgramResult &P = R.Programs[I];
    if (I)
      Out += ',';
    Out += "{\"id\":";
    jsonStr(P.Id, Out);
    Out += ",\"ok\":";
    Out += P.Ok ? "true" : "false";
    Out += ",\"status\":";
    jsonStr(jobStatusName(P.Status), Out);
    Out += ",\"stop\":";
    jsonStr(stopCauseName(P.Stop), Out);
    Out += ",\"retries\":";
    Out += std::to_string(P.Retries);
    if (Timings) {
      Out += ",\"cache_hit\":";
      Out += P.CacheHit ? "true" : "false";
      Out += ",\"store_hit\":";
      Out += P.StoreHit ? "true" : "false";
    }
    Out += ",\"diagnostics\":";
    jsonStr(P.Diagnostics, Out);
    Out += ",\"bounds\":[";
    for (size_t B = 0; B != P.Bounds.size(); ++B) {
      const FunctionReport &F = P.Bounds[B];
      if (B)
        Out += ',';
      Out += "{\"function\":";
      jsonStr(F.Function, Out);
      Out += ",\"symbolic\":";
      jsonStr(F.SymbolicBound, Out);
      Out += ",\"bytes\":";
      Out += F.ConcreteBytes ? std::to_string(*F.ConcreteBytes) : "null";
      Out += '}';
    }
    Out += "],\"skipped_recursive\":[";
    for (size_t S = 0; S != P.SkippedRecursive.size(); ++S) {
      if (S)
        Out += ',';
      jsonStr(P.SkippedRecursive[S], Out);
    }
    Out += "],\"theorem1\":{\"checked\":";
    Out += P.Theorem1Checked ? "true" : "false";
    Out += ",\"ok\":";
    Out += P.Theorem1Ok ? "true" : "false";
    Out += ",\"stack_bytes\":";
    Out += std::to_string(P.Theorem1StackBytes);
    Out += "},\"metrics\":{";
    if (Timings) {
      jsonKey("total_us", Out);
      Out += std::to_string(P.Metrics.TotalMicros) + ",";
      jsonKey("passes", Out);
      jsonPairs("us", P.Metrics.PassMicros, Out);
      Out += ',';
      // The proof-check phase, split out of "analyze": how long the
      // checker itself ran and what it walked, per rule.
      jsonKey("proof_check_ms", Out);
      {
        char Ms[32];
        std::snprintf(Ms, sizeof Ms, "%.3f",
                      static_cast<double>(P.Metrics.ProofCheckMicros) /
                          1000.0);
        Out += Ms;
      }
      Out += ',';
      jsonKey("proof_rule_nodes", Out);
      jsonPairs("nodes", P.Metrics.ProofRuleNodes, Out);
      Out += ',';
      // How the verdict was produced, not what it is: Full-detail only,
      // so warm and cold runs stay byte-identical at Deterministic.
      jsonKey("incremental", Out);
      Out += "{\"funcs_reused\":" + std::to_string(P.Metrics.FuncsReused) +
             ",\"funcs_reverified\":" +
             std::to_string(P.Metrics.FuncsReVerified) +
             ",\"funcs_invalidated\":" +
             std::to_string(P.Metrics.FuncsInvalidated) +
             ",\"interned_bounds\":" +
             std::to_string(P.Metrics.InternedBounds) +
             ",\"arena_high_water\":" +
             std::to_string(P.Metrics.ArenaHighWater) +
             ",\"reverified_functions\":[";
      for (size_t F = 0; F != P.Metrics.ReVerifiedFunctions.size(); ++F) {
        if (F)
          Out += ',';
        jsonStr(P.Metrics.ReVerifiedFunctions[F], Out);
      }
      Out += "]},";
    }
    jsonKey("refinement_events", Out);
    jsonPairs("events", P.Metrics.ReplayedEvents, Out);
    Out += ',';
    jsonKey("proof_nodes", Out);
    Out += std::to_string(P.Metrics.ProofNodes);
    Out += "}}";
  }
  Out += "]}";
  return Out;
}

//===----------------------------------------------------------------------===//
// The built-in corpus as batch jobs
//===----------------------------------------------------------------------===//

std::vector<BatchJob> qcc::batch::corpusJobs(bool ValidateTranslation) {
  std::vector<BatchJob> Jobs;
  for (programs::VerificationUnit &U : programs::verificationCorpus()) {
    BatchJob J;
    J.Id = std::move(U.Id);
    J.Source = std::move(U.Source);
    J.Options.ValidateTranslation = ValidateTranslation;
    J.Options.SeededSpecs = std::move(U.SeededSpecs);
    Jobs.push_back(std::move(J));
  }
  return Jobs;
}
