//===- batch/Batch.h - Parallel batch-verification engine -------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel batch-verification engine: many programs compiled,
/// translation-validated, automatically bounded, and Theorem-1-checked
/// concurrently on a work-stealing pool (batch/ThreadPool.h), with
///
///   * per-program results (bounds, diagnostics, Theorem 1 outcome),
///   * pass-level metrics (wall time per stage, refinement-replay event
///     counts, proof-checker node counts), serializable as JSON,
///   * a content-hash result cache so an unchanged (source, options)
///     pair skips recompilation entirely.
///
/// Every job runs on its own DiagnosticEngine (see the thread-safety
/// contract in support/Diagnostics.h); results land in pre-sized slots
/// indexed by job position, so the output is deterministic: a batch run
/// with N workers is byte-identical (modulo timing fields) to the serial
/// run. tests/BatchTest.cpp enforces this.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_BATCH_BATCH_H
#define QCC_BATCH_BATCH_H

#include "driver/Compiler.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace qcc {
namespace batch {

class Watchdog;

/// One unit of batch work: a named source plus its compiler options.
struct BatchJob {
  std::string Id; ///< Display name (corpus id or file path).
  std::string Source;
  driver::CompilerOptions Options;
};

/// Final classification of one job in a (possibly supervised) batch.
enum class JobStatus : uint8_t {
  Ok,                 ///< Verified clean.
  Failed,             ///< Definitive compile/validation/Theorem-1 failure.
  Quarantined,        ///< Exhausted its budget on every allowed attempt;
                      ///< no verdict was reached.
  SkippedFromJournal, ///< A previous run already completed it (resume).
  Cancelled           ///< Stopped by the batch-wide interrupt token.
};

/// Display name of \p S ("ok", "failed", "quarantined", ...).
const char *jobStatusName(JobStatus S);

/// One verified function in a program's report.
struct FunctionReport {
  std::string Function;
  std::string SymbolicBound;
  /// Instantiated call bound in bytes; nullopt when parametric (needs
  /// argument values) or infinite.
  std::optional<uint64_t> ConcreteBytes;
};

/// Pass-level metrics for one program (driver::PassStats plus totals).
struct ProgramMetrics {
  std::vector<std::pair<std::string, uint64_t>> PassMicros;
  std::vector<std::pair<std::string, uint64_t>> ReplayedEvents;
  uint64_t ProofNodes = 0;
  /// Time inside the proof checker validating fresh bounds. A timing
  /// (warm runs check fewer functions), so Full-detail only — unlike
  /// proof_nodes, which counts the artifact and stays deterministic.
  uint64_t ProofCheckMicros = 0;
  /// Proof-checker node visits per rule (fresh bounds only, nonzero
  /// rules), Full-detail only for the same reason.
  std::vector<std::pair<std::string, uint64_t>> ProofRuleNodes;
  uint64_t TotalMicros = 0;
  /// Incremental-engine counters, all zero when the job ran through the
  /// whole-file path. Like the timing fields, these describe how the
  /// verdict was produced, not what it is: metricsJson emits them only at
  /// Full detail, so a warm incremental run stays byte-identical to a
  /// cold run under JsonDetail::Deterministic.
  uint64_t FuncsReused = 0;       ///< Served from the function cache/store.
  uint64_t FuncsReVerified = 0;   ///< Derived and checked fresh this run.
  uint64_t FuncsInvalidated = 0;  ///< Previously-keyed functions whose key
                                  ///< changed (edited or caller-affected).
  uint64_t InternedBounds = 0;    ///< logic::internStats() table size.
  uint64_t ArenaHighWater = 0;    ///< Process-wide arena high water, bytes.
  /// The exact set of functions re-verified this run, sorted by name
  /// (what the mutation regression tests assert on).
  std::vector<std::string> ReVerifiedFunctions;
};

/// Everything the engine reports for one job.
struct ProgramResult {
  std::string Id;
  bool Ok = false;       ///< Compiled, validated, and (when checked)
                         ///< survived Theorem 1.
  bool CacheHit = false; ///< Served from the in-memory result cache.
  bool StoreHit = false; ///< Served from the persistent on-disk store.
  std::string Diagnostics;
  std::vector<FunctionReport> Bounds; ///< Sorted by function name.
  std::vector<std::string> SkippedRecursive;
  /// Theorem 1: ran the program on a stack of exactly bound(main) - 4
  /// bytes. Unchecked when main has no finite concrete bound.
  bool Theorem1Checked = false;
  bool Theorem1Ok = false;
  uint32_t Theorem1StackBytes = 0;
  /// Final classification. Ok/Failed are definitive verdicts; Quarantined
  /// and Cancelled mean the budget ran out before any verdict — the
  /// distinction Ok alone cannot express (DESIGN.md section 5d).
  JobStatus Status = JobStatus::Failed;
  /// Why the last attempt stopped short, when it did (fuel, deadline,
  /// memory budget, interrupt); None for definitive results.
  StopCause Stop = StopCause::None;
  /// Attempts beyond the first (bounded by BatchOptions::Retries).
  uint32_t Retries = 0;
  ProgramMetrics Metrics;
  /// The proof artifacts behind this verdict in stable external form
  /// (store/Serialize.h: the function context plus every automatically
  /// derived, checker-validated derivation, statements as preorder
  /// indices). Filled only when the caller asked verifyOne to keep
  /// proofs — the persistent store serializes it verbatim, and
  /// `--store-verify` re-checks it on load. Empty otherwise.
  std::string ProofBlob;
};

/// Cache counters for one batch run (or one cache lifetime).
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  /// Lookups whose primary (bucket) hash matched but whose independent
  /// verification hash did not: a genuine 64-bit collision, served as a
  /// miss instead of the wrong program's verdict.
  uint64_t Collisions = 0;
};

/// The content key of one job: two independent 64-bit digests over the
/// same material. Primary is the bucket key (FNV-1a, the PR 1 key,
/// unchanged so journals stay comparable); Verify is an unrelated second
/// hash checked on every cache or store hit, so a collision in one
/// function alone can no longer serve the cached verdict for the wrong
/// source (it surfaces as a miss and a CacheStats::Collisions tick).
struct JobKey {
  uint64_t Primary = 0;
  uint64_t Verify = 0;

  bool operator==(const JobKey &O) const {
    return Primary == O.Primary && Verify == O.Verify;
  }
  bool operator!=(const JobKey &O) const { return !(*this == O); }
};

/// A thread-safe content-addressed result cache. Keyed by JobKey —
/// bucketed on the primary hash, guarded by the verification hash — over
/// (source, options, check-mode); see jobKey. A source edit, a -D change,
/// or an option change all miss.
class ResultCache {
public:
  std::shared_ptr<const ProgramResult> lookup(const JobKey &Key);
  void insert(const JobKey &Key, std::shared_ptr<const ProgramResult> Result);
  CacheStats stats() const;
  size_t size() const;
  void clear();

private:
  struct Entry {
    uint64_t Verify;
    std::shared_ptr<const ProgramResult> Result;
  };
  mutable std::mutex M;
  std::unordered_map<uint64_t, Entry> Map;
  CacheStats Counters;
};

/// The persistent result store the batch engine consults after the
/// in-memory cache: an abstract interface so the engine stays ignorant of
/// the on-disk format (store/Store.h implements it with a crash-safe,
/// content-addressed directory). Both calls must be thread-safe; \p Sup,
/// when non-null, is charged for the I/O bytes against its memory budget
/// (a budget-tripped fetch degrades to a miss; a put always completes —
/// the SIGINT drain relies on in-flight writes flushing).
class ResultStore {
public:
  virtual ~ResultStore() = default;
  /// Returns the stored result for (\p Key, \p Job), or null on miss,
  /// corruption (quarantined internally), or failed proof re-check.
  virtual std::shared_ptr<const ProgramResult>
  fetch(const JobKey &Key, const BatchJob &Job, Supervisor *Sup) = 0;
  /// Persists a definitive result. Never throws; failures are counted,
  /// not fatal (the store is an accelerator, not a dependency).
  virtual void put(const JobKey &Key, const ProgramResult &Result,
                   Supervisor *Sup) = 0;
};

/// The cache key of \p J: a content hash covering the full source text,
/// every -D define, every compilation flag, the validation fuel, the
/// seeded specifications, and whether Theorem 1 is checked.
JobKey jobKey(const BatchJob &J, bool CheckTheorem1);

/// A function-granular verification engine the batch loop can dispatch
/// to in place of \c verifyOne. Implemented by incremental::Engine: the
/// whole-file JobKey caches above still run first (they are cheaper than
/// any per-function work), and this engine handles the misses — a warm
/// edit re-verifies only the edited function and its transitive callers.
/// The contract is bit-identity: for any job, verify() must produce the
/// same verdict, bounds, diagnostics, proof blob, and deterministic
/// metrics as verifyOne(Job, CheckTheorem1, Sup, KeepProofArtifacts);
/// only timing fields and the incremental counters may differ.
class IncrementalEngine {
public:
  virtual ~IncrementalEngine() = default;
  virtual ProgramResult verify(const BatchJob &Job, bool CheckTheorem1,
                               Supervisor *Sup, bool KeepProofArtifacts) = 0;
};

/// Engine configuration.
struct BatchOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned Jobs = 0;
  /// Run each program at stack size bound(main) - 4 (Theorem 1).
  bool CheckTheorem1 = true;
  /// Optional shared result cache (caller-owned, may outlive batches).
  /// Budget-stopped results are never cached: a later attempt with more
  /// budget must get a fresh run.
  ResultCache *Cache = nullptr;
  /// Optional persistent store (caller-owned), consulted after the
  /// in-memory cache and fed on every definitive fresh verdict. A store
  /// hit also populates the in-memory cache, so same-run duplicates stay
  /// memory-fast. When set, verifyOne keeps proof artifacts so they can
  /// be persisted alongside the verdict.
  ResultStore *Store = nullptr;
  /// Per-job wall-clock deadline in milliseconds (0 = none). Enforced by
  /// a Watchdog thread; a job past its deadline stops at its next poll.
  uint64_t DeadlineMillis = 0;
  /// Per-job soft memory budget in bytes (0 = unlimited), charged by the
  /// streaming sinks and the proof checker.
  uint64_t MemoryBudgetBytes = 0;
  /// Budget-stopped jobs are retried this many times at a quarter of
  /// their validation fuel; a job that exhausts its budget on every
  /// attempt is quarantined.
  unsigned Retries = 1;
  /// Resume journal path (empty = none). Completed jobs append
  /// "<status> <jobKey>" lines; a rerun with the same journal skips jobs
  /// it already finds there. Only definitive verdicts are journaled.
  std::string JournalPath;
  /// Optional function-granular engine (caller-owned; thread-safe). When
  /// set, fresh verification attempts run through it instead of
  /// verifyOne, reusing per-function work across jobs and runs.
  IncrementalEngine *Incremental = nullptr;
  /// Batch-wide cancel token (the CLI's SIGINT handler cancels it).
  /// Every per-job supervisor is parented to it, so one cancel drains
  /// in-flight jobs at their next poll point.
  Supervisor *Interrupt = nullptr;
  /// Testing hook: invoked the moment a job's final result is known,
  /// *before* the engine flushes it to the journal. The SIGINT-drain
  /// regression tests cancel the interrupt token here to pin the
  /// completion-vs-flush race: a verdict that exists when the interrupt
  /// fires must still reach the journal (the post-quiesce re-scan
  /// guarantees it). Leave unset outside tests.
  std::function<void(const ProgramResult &)> CompletionBarrier;
};

/// The whole batch's outcome, jobs in input order.
struct BatchResult {
  std::vector<ProgramResult> Programs;
  CacheStats Cache; ///< Hits/misses attributable to this run.
  uint64_t WallMicros = 0;
  unsigned Jobs = 1; ///< Worker threads actually used.
  /// Proof-checker nodes validated by *fresh* verification work in this
  /// run — cache hits, store hits, and journal skips contribute nothing.
  /// The warm/cold acceptance criterion: a fully warm store rerun
  /// reports identical per-program metrics but zero fresh proof nodes.
  uint64_t FreshProofNodes = 0;

  bool allOk() const;

  /// Jobs served from the persistent store.
  unsigned storeHits() const;

  /// Jobs whose final status is \p S.
  unsigned countStatus(JobStatus S) const;

  /// The CLI exit-code taxonomy: 3 when any job was quarantined or
  /// cancelled (the batch could not reach a verdict everywhere — an
  /// infrastructure/budget problem, not a refutation), else 1 when any
  /// job failed verification, else 0.
  int exitCode() const;
};

/// Verifies a single job, fully instrumented: compile (+ per-pass
/// translation validation + automatic bounds) and, when \p CheckTheorem1,
/// execute at the verified bound. The engine's unit of work; exposed for
/// tests and single-file callers.
ProgramResult verifyOne(const BatchJob &Job, bool CheckTheorem1 = true);

/// Supervised variant: the compilation, validation runs, analysis and
/// Theorem-1 execution all poll \p Sup (which may be null). A stopped job
/// comes back with Status Quarantined/Cancelled and the StopCause — never
/// with a verdict. With \p KeepProofArtifacts, a successful job carries
/// its checked derivations in external form (ProgramResult::ProofBlob)
/// for the persistent store to write.
ProgramResult verifyOne(const BatchJob &Job, bool CheckTheorem1,
                        Supervisor *Sup, bool KeepProofArtifacts = false);

/// One fully governed verification, decoupled from the batch loop: the
/// in-memory cache consult, the persistent-store fetch, budgeted attempts
/// with bounded retries under a per-job Supervisor parented to
/// \p Options.Interrupt, and persistence of a definitive fresh verdict
/// back into cache and store. This is the unit the batch engine fans out
/// over a directory scan and the qccd daemon runs per protocol request —
/// both produce bit-identical results for the same (job, options).
/// \p Options.Jobs and \p Options.JournalPath are ignored (journaling is
/// the batch loop's concern); \p Dog, when non-null, enforces
/// \p Options.DeadlineMillis. \p ChargedBytes, when non-null, receives
/// the supervisor bytes charged across all attempts — what the daemon
/// bills against a client's fair-share budget.
ProgramResult runSupervisedJob(const BatchJob &Job,
                               const BatchOptions &Options, Watchdog *Dog,
                               uint64_t *ChargedBytes = nullptr);

/// Runs every job, fanning out across \p Options.Jobs workers.
BatchResult runBatch(const std::vector<BatchJob> &Jobs,
                     const BatchOptions &Options = {});

/// How much of the report metricsJson emits.
enum class JsonDetail {
  /// Everything, including wall times and cache statistics.
  Full,
  /// Omits timing fields and cache occupancy: two runs of the same jobs
  /// — serial or parallel — produce byte-identical output. What the
  /// determinism tests compare.
  Deterministic
};

/// Serializes \p R as a JSON document (schema "qcc-batch-metrics-v1"):
/// per-program pass timings, refinement event counts, proof-checker node
/// counts, bounds, and batch-level cache statistics.
std::string metricsJson(const BatchResult &R,
                        JsonDetail Detail = JsonDetail::Full);

/// The full evaluation corpus (Table 1 files, the Section 2 program, and
/// the Table 2 recursive file, the latter two seeded with their
/// interactive specs) as ready-to-run batch jobs.
std::vector<BatchJob> corpusJobs(bool ValidateTranslation = true);

} // namespace batch
} // namespace qcc

#endif // QCC_BATCH_BATCH_H
