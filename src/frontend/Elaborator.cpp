//===- frontend/Elaborator.cpp - AST to Clight core -----------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "frontend/Elaborator.h"

#include <cassert>

using namespace qcc;
using namespace qcc::frontend;
namespace cl = qcc::clight;

//===----------------------------------------------------------------------===//
// Constant expressions
//===----------------------------------------------------------------------===//

std::optional<uint32_t> Elaborator::evalConst(const ast::Expr &E) {
  using ast::ExprKind;
  switch (E.Kind) {
  case ExprKind::Number:
    return E.Value;
  case ExprKind::Unary: {
    auto V = evalConst(*E.Lhs);
    if (!V)
      return std::nullopt;
    switch (E.UOp) {
    case ast::UnaryOp::Neg: return static_cast<uint32_t>(0) - *V;
    case ast::UnaryOp::Plus: return *V;
    case ast::UnaryOp::Not: return *V == 0 ? 1u : 0u;
    case ast::UnaryOp::BitNot: return ~*V;
    }
    return std::nullopt;
  }
  case ExprKind::Binary: {
    auto L = evalConst(*E.Lhs);
    auto R = evalConst(*E.Rhs);
    if (!L || !R)
      return std::nullopt;
    // Constant expressions are evaluated with unsigned 32-bit semantics
    // (sufficient for the corpus' sizes and initializers).
    switch (E.BOp) {
    case ast::BinaryOp::Add: return *L + *R;
    case ast::BinaryOp::Sub: return *L - *R;
    case ast::BinaryOp::Mul: return *L * *R;
    case ast::BinaryOp::Div:
      if (*R == 0) {
        Diags.error(E.Loc, "division by zero in constant expression");
        return std::nullopt;
      }
      return *L / *R;
    case ast::BinaryOp::Rem:
      if (*R == 0) {
        Diags.error(E.Loc, "remainder by zero in constant expression");
        return std::nullopt;
      }
      return *L % *R;
    case ast::BinaryOp::BitAnd: return *L & *R;
    case ast::BinaryOp::BitOr: return *L | *R;
    case ast::BinaryOp::BitXor: return *L ^ *R;
    case ast::BinaryOp::Shl: return *L << (*R & 31);
    case ast::BinaryOp::Shr: return *L >> (*R & 31);
    case ast::BinaryOp::Lt: return *L < *R;
    case ast::BinaryOp::Le: return *L <= *R;
    case ast::BinaryOp::Gt: return *L > *R;
    case ast::BinaryOp::Ge: return *L >= *R;
    case ast::BinaryOp::Eq: return *L == *R;
    case ast::BinaryOp::Ne: return *L != *R;
    case ast::BinaryOp::LAnd: return (*L && *R) ? 1u : 0u;
    case ast::BinaryOp::LOr: return (*L || *R) ? 1u : 0u;
    }
    return std::nullopt;
  }
  case ExprKind::Cond: {
    auto C = evalConst(*E.Lhs);
    if (!C)
      return std::nullopt;
    return *C ? evalConst(*E.Rhs) : evalConst(*E.Third);
  }
  default:
    Diags.error(E.Loc, "expression is not constant");
    return std::nullopt;
  }
}

//===----------------------------------------------------------------------===//
// Program assembly
//===----------------------------------------------------------------------===//

cl::Program Elaborator::run(const ast::TranslationUnit &TU) {
  cl::Program P;
  CurrentProgram = &P;

  // Globals. Total size is capped: a hostile `u32 g[1000000000];` must
  // be a diagnostic, not a multi-gigabyte allocation here (the machine
  // image couldn't host it anyway — see x86's memory-layout checks).
  constexpr uint64_t MaxGlobalWords = 1u << 24; // 64 MiB of globals.
  uint64_t TotalWords = 0;
  for (const ast::GlobalDecl &G : TU.Globals) {
    cl::GlobalVar GV;
    GV.Name = G.Name;
    GV.Loc = G.Loc;
    GV.Sign = G.Ty == ast::Type::I32 ? cl::Signedness::Signed
                                     : cl::Signedness::Unsigned;
    if (G.IsArray) {
      GV.IsArray = true;
      uint32_t Size = 0;
      if (G.ArraySize) {
        if (auto V = evalConst(*G.ArraySize))
          Size = *V;
      } else if (!G.Init.empty()) {
        Size = static_cast<uint32_t>(G.Init.size());
      } else {
        Diags.error(G.Loc, "array '" + G.Name + "' has no size");
      }
      if (Size == 0 && G.ArraySize)
        Diags.error(G.Loc, "array '" + G.Name + "' has zero size");
      if (Size > MaxGlobalWords) {
        Diags.error(G.Loc, "array '" + G.Name + "' (" + std::to_string(Size) +
                               " words) exceeds the global data limit of " +
                               std::to_string(MaxGlobalWords) + " words");
        Size = 1;
      }
      GV.Size = Size;
      ArrayElemTypes[G.Name] = G.Ty;
    } else {
      GV.Size = 1;
      GlobalTypes[G.Name] = G.Ty;
    }
    for (const ast::ExprPtr &I : G.Init) {
      if (auto V = evalConst(*I))
        GV.Init.push_back(*V);
      else
        GV.Init.push_back(0);
    }
    if (GV.Init.size() > GV.Size)
      Diags.error(G.Loc, "too many initializers for '" + G.Name + "'");
    GV.Init.resize(GV.Size, 0);
    TotalWords += GV.Size;
    if (TotalWords > MaxGlobalWords) {
      Diags.error(G.Loc, "total global data exceeds the limit of " +
                             std::to_string(MaxGlobalWords) + " words");
      TotalWords = 0; // Diagnose once per program, not per declaration.
    }
    P.Globals.push_back(std::move(GV));
  }

  // Externals.
  for (const ast::ExternDecl &E : TU.Externs) {
    cl::ExternalDecl ED;
    ED.Name = E.Name;
    ED.Arity = static_cast<unsigned>(E.ParamTypes.size());
    ED.HasResult = E.ReturnType != ast::Type::Void;
    ED.Loc = E.Loc;
    P.Externals.push_back(std::move(ED));
    Signatures[E.Name] = {/*IsExternal=*/true, ED.Arity, E.ReturnType};
  }

  // Function signatures first so forward calls resolve.
  for (const ast::FunctionDecl &F : TU.Functions) {
    if (Signatures.count(F.Name))
      Diags.error(F.Loc, "redefinition of '" + F.Name + "'");
    Signatures[F.Name] = {/*IsExternal=*/false,
                          static_cast<unsigned>(F.Params.size()),
                          F.ReturnType};
  }

  for (const ast::FunctionDecl &F : TU.Functions)
    elabFunction(F, P);

  CurrentProgram = nullptr;
  return P;
}

//===----------------------------------------------------------------------===//
// Functions
//===----------------------------------------------------------------------===//

std::string Elaborator::freshTemp() {
  return "$t" + std::to_string(TempCounter++);
}

void Elaborator::declareLocal(const std::string &Name, ast::Type Ty,
                              SourceLoc Loc) {
  if (LocalTypes.count(Name)) {
    Diags.error(Loc, "redeclaration of '" + Name +
                         "' (one scope per function in the subset)");
    return;
  }
  LocalTypes[Name] = Ty;
  CurrentFunction->Locals.push_back(Name);
  CurrentFunction->VarSigns[Name] = Ty == ast::Type::I32
                                        ? cl::Signedness::Signed
                                        : cl::Signedness::Unsigned;
}

void Elaborator::elabFunction(const ast::FunctionDecl &F, cl::Program &P) {
  cl::Function CF;
  CF.Name = F.Name;
  CF.ReturnsValue = F.ReturnType != ast::Type::Void;
  CF.Loc = F.Loc;

  LocalTypes.clear();
  TempCounter = 0;
  CurrentFunction = &CF;
  CurrentReturnType = F.ReturnType;

  for (const ast::ParamDecl &Param : F.Params) {
    if (LocalTypes.count(Param.Name))
      Diags.error(Param.Loc, "duplicate parameter '" + Param.Name + "'");
    LocalTypes[Param.Name] = Param.Ty;
    CF.Params.push_back(Param.Name);
    CF.VarSigns[Param.Name] = Param.Ty == ast::Type::I32
                                  ? cl::Signedness::Signed
                                  : cl::Signedness::Unsigned;
  }

  cl::StmtPtr Body = elabStmt(*F.Body);

  // Functions fall off the end with an implicit `return` (value-returning
  // functions get a defined 0, CompCert-style for main).
  cl::StmtPtr Epilogue = CF.ReturnsValue
                             ? cl::Stmt::ret(cl::Expr::intConst(0), F.Loc)
                             : cl::Stmt::retVoid(F.Loc);
  CF.Body = cl::Stmt::seq(std::move(Body), std::move(Epilogue), F.Loc);

  CurrentFunction = nullptr;
  P.Functions.push_back(std::move(CF));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

cl::StmtPtr Elaborator::sequence(std::vector<cl::StmtPtr> Stmts,
                                 cl::StmtPtr Last) {
  cl::StmtPtr Out = std::move(Last);
  for (auto It = Stmts.rbegin(); It != Stmts.rend(); ++It)
    Out = cl::Stmt::seq(std::move(*It), std::move(Out), Out->Loc);
  return Out;
}

/// Chooses the unsigned variant when either operand is unsigned (the usual
/// arithmetic conversions on 32-bit operands).
static bool isUnsignedJoin(ast::Type A, ast::Type B) {
  return A == ast::Type::U32 || B == ast::Type::U32;
}

cl::StmtPtr Elaborator::elabCallInto(const ast::Expr &Call,
                                     std::optional<cl::LValue> Dest,
                                     std::vector<cl::StmtPtr> &Hoisted) {
  // Internal invariant, not source-reachable: every caller dispatches on
  // ExprKind::Call before handing the expression here.
  assert(Call.Kind == ast::ExprKind::Call && "not a call");
  auto SigIt = Signatures.find(Call.Name);
  if (SigIt == Signatures.end()) {
    Diags.error(Call.Loc, "call to undefined function '" + Call.Name + "'");
    return cl::Stmt::skip(Call.Loc);
  }
  const Signature &Sig = SigIt->second;
  if (Call.Args.size() != Sig.Arity)
    Diags.error(Call.Loc, "call to '" + Call.Name + "' passes " +
                              std::to_string(Call.Args.size()) +
                              " arguments, expected " +
                              std::to_string(Sig.Arity));
  if (Dest && Sig.ReturnType == ast::Type::Void)
    Diags.error(Call.Loc, "void function '" + Call.Name +
                              "' used as a value");

  std::vector<cl::ExprPtr> Args;
  for (const ast::ExprPtr &A : Call.Args)
    Args.push_back(elabExpr(*A, Hoisted).E);

  if (Dest)
    return cl::Stmt::callAssign(std::move(*Dest), Call.Name, std::move(Args),
                                Call.Loc);
  return cl::Stmt::call(Call.Name, std::move(Args), Call.Loc);
}

Elaborator::Elaborated
Elaborator::elabShortCircuit(const ast::Expr &E,
                             std::vector<cl::StmtPtr> &Hoisted) {
  bool IsAnd = E.BOp == ast::BinaryOp::LAnd;

  // Pure operands keep the expression form: a && b  ~>  a ? (b != 0) : 0.
  if (!E.Rhs->containsCall()) {
    Elaborated L = elabExpr(*E.Lhs, Hoisted);
    Elaborated R = elabExpr(*E.Rhs, Hoisted);
    cl::ExprPtr RBool = cl::Expr::binary(cl::BinOp::Ne, std::move(R.E),
                                         cl::Expr::intConst(0), E.Loc);
    cl::ExprPtr Out =
        IsAnd ? cl::Expr::cond(std::move(L.E), std::move(RBool),
                               cl::Expr::intConst(0), E.Loc)
              : cl::Expr::cond(std::move(L.E), cl::Expr::intConst(1),
                               std::move(RBool), E.Loc);
    return {std::move(Out), ast::Type::I32};
  }

  // The lazily evaluated side performs calls: materialize control flow.
  //   t = (a != 0); if (t) { t = (b != 0); }        for &&
  //   t = (a != 0); if (t) {} else { t = (b != 0); } for ||
  std::string Temp = freshTemp();
  declareLocal(Temp, ast::Type::I32, E.Loc);
  Elaborated L = elabExpr(*E.Lhs, Hoisted);
  Hoisted.push_back(cl::Stmt::assign(
      cl::LValue::local(Temp),
      cl::Expr::binary(cl::BinOp::Ne, std::move(L.E), cl::Expr::intConst(0),
                       E.Loc),
      E.Loc));
  std::vector<cl::StmtPtr> RhsHoisted;
  Elaborated R = elabExpr(*E.Rhs, RhsHoisted);
  cl::StmtPtr SetFromRhs = sequence(
      std::move(RhsHoisted),
      cl::Stmt::assign(cl::LValue::local(Temp),
                       cl::Expr::binary(cl::BinOp::Ne, std::move(R.E),
                                        cl::Expr::intConst(0), E.Loc),
                       E.Loc));
  cl::ExprPtr Guard = cl::Expr::localRead(Temp, E.Loc);
  if (IsAnd)
    Hoisted.push_back(cl::Stmt::ifThenElse(std::move(Guard),
                                           std::move(SetFromRhs),
                                           cl::Stmt::skip(E.Loc), E.Loc));
  else
    Hoisted.push_back(cl::Stmt::ifThenElse(std::move(Guard),
                                           cl::Stmt::skip(E.Loc),
                                           std::move(SetFromRhs), E.Loc));
  return {cl::Expr::localRead(Temp, E.Loc), ast::Type::I32};
}

Elaborator::Elaborated Elaborator::elabExpr(const ast::Expr &E,
                                            std::vector<cl::StmtPtr> &Hoisted) {
  using ast::ExprKind;
  switch (E.Kind) {
  case ExprKind::Number:
    return {cl::Expr::intConst(E.Value, E.Loc),
            E.ForcedUnsigned ? ast::Type::U32 : ast::Type::I32};

  case ExprKind::Var: {
    if (auto It = LocalTypes.find(E.Name); It != LocalTypes.end())
      return {cl::Expr::localRead(E.Name, E.Loc), It->second};
    if (auto It = GlobalTypes.find(E.Name); It != GlobalTypes.end())
      return {cl::Expr::globalRead(E.Name, E.Loc), It->second};
    if (ArrayElemTypes.count(E.Name))
      Diags.error(E.Loc, "array '" + E.Name + "' used without subscript");
    else
      Diags.error(E.Loc, "unknown identifier '" + E.Name + "'");
    return {cl::Expr::intConst(0, E.Loc), ast::Type::I32};
  }

  case ExprKind::Index: {
    auto It = ArrayElemTypes.find(E.Name);
    if (It == ArrayElemTypes.end()) {
      Diags.error(E.Loc, "unknown array '" + E.Name + "'");
      return {cl::Expr::intConst(0, E.Loc), ast::Type::I32};
    }
    Elaborated Idx = elabExpr(*E.Lhs, Hoisted);
    return {cl::Expr::arrayRead(E.Name, std::move(Idx.E), E.Loc), It->second};
  }

  case ExprKind::Unary: {
    Elaborated Operand = elabExpr(*E.Lhs, Hoisted);
    switch (E.UOp) {
    case ast::UnaryOp::Plus:
      return Operand;
    case ast::UnaryOp::Neg:
      return {cl::Expr::unary(cl::UnOp::Neg, std::move(Operand.E), E.Loc),
              Operand.Ty};
    case ast::UnaryOp::Not:
      return {cl::Expr::unary(cl::UnOp::BoolNot, std::move(Operand.E), E.Loc),
              ast::Type::I32};
    case ast::UnaryOp::BitNot:
      return {cl::Expr::unary(cl::UnOp::BitNot, std::move(Operand.E), E.Loc),
              Operand.Ty};
    }
    return {cl::Expr::intConst(0, E.Loc), ast::Type::I32};
  }

  case ExprKind::Binary: {
    if (E.BOp == ast::BinaryOp::LAnd || E.BOp == ast::BinaryOp::LOr)
      return elabShortCircuit(E, Hoisted);
    Elaborated L = elabExpr(*E.Lhs, Hoisted);
    Elaborated R = elabExpr(*E.Rhs, Hoisted);
    bool Uns = isUnsignedJoin(L.Ty, R.Ty);
    ast::Type Join = Uns ? ast::Type::U32 : ast::Type::I32;
    cl::BinOp Op;
    ast::Type ResultTy = Join;
    switch (E.BOp) {
    case ast::BinaryOp::Add: Op = cl::BinOp::Add; break;
    case ast::BinaryOp::Sub: Op = cl::BinOp::Sub; break;
    case ast::BinaryOp::Mul: Op = cl::BinOp::Mul; break;
    case ast::BinaryOp::Div: Op = Uns ? cl::BinOp::DivU : cl::BinOp::DivS; break;
    case ast::BinaryOp::Rem: Op = Uns ? cl::BinOp::ModU : cl::BinOp::ModS; break;
    case ast::BinaryOp::BitAnd: Op = cl::BinOp::And; break;
    case ast::BinaryOp::BitOr: Op = cl::BinOp::Or; break;
    case ast::BinaryOp::BitXor: Op = cl::BinOp::Xor; break;
    case ast::BinaryOp::Shl:
      Op = cl::BinOp::Shl;
      ResultTy = L.Ty;
      break;
    case ast::BinaryOp::Shr:
      Op = L.Ty == ast::Type::U32 ? cl::BinOp::ShrU : cl::BinOp::ShrS;
      ResultTy = L.Ty;
      break;
    case ast::BinaryOp::Lt:
      Op = Uns ? cl::BinOp::LtU : cl::BinOp::LtS;
      ResultTy = ast::Type::I32;
      break;
    case ast::BinaryOp::Le:
      Op = Uns ? cl::BinOp::LeU : cl::BinOp::LeS;
      ResultTy = ast::Type::I32;
      break;
    case ast::BinaryOp::Gt:
      Op = Uns ? cl::BinOp::GtU : cl::BinOp::GtS;
      ResultTy = ast::Type::I32;
      break;
    case ast::BinaryOp::Ge:
      Op = Uns ? cl::BinOp::GeU : cl::BinOp::GeS;
      ResultTy = ast::Type::I32;
      break;
    case ast::BinaryOp::Eq:
      Op = cl::BinOp::Eq;
      ResultTy = ast::Type::I32;
      break;
    case ast::BinaryOp::Ne:
      Op = cl::BinOp::Ne;
      ResultTy = ast::Type::I32;
      break;
    default:
      Op = cl::BinOp::Add;
      break;
    }
    return {cl::Expr::binary(Op, std::move(L.E), std::move(R.E), E.Loc),
            ResultTy};
  }

  case ExprKind::Cond: {
    Elaborated C = elabExpr(*E.Lhs, Hoisted);
    if (!E.Rhs->containsCall() && !E.Third->containsCall()) {
      Elaborated T = elabExpr(*E.Rhs, Hoisted);
      Elaborated F = elabExpr(*E.Third, Hoisted);
      ast::Type Join = isUnsignedJoin(T.Ty, F.Ty) ? ast::Type::U32
                                                  : ast::Type::I32;
      return {cl::Expr::cond(std::move(C.E), std::move(T.E), std::move(F.E),
                             E.Loc),
              Join};
    }
    // A lazily evaluated arm performs calls: materialize an if-statement.
    std::string Temp = freshTemp();
    declareLocal(Temp, ast::Type::U32, E.Loc);
    std::vector<cl::StmtPtr> ThenHoisted, ElseHoisted;
    Elaborated T = elabExpr(*E.Rhs, ThenHoisted);
    Elaborated F = elabExpr(*E.Third, ElseHoisted);
    ast::Type Join =
        isUnsignedJoin(T.Ty, F.Ty) ? ast::Type::U32 : ast::Type::I32;
    cl::StmtPtr ThenS = sequence(
        std::move(ThenHoisted),
        cl::Stmt::assign(cl::LValue::local(Temp), std::move(T.E), E.Loc));
    cl::StmtPtr ElseS = sequence(
        std::move(ElseHoisted),
        cl::Stmt::assign(cl::LValue::local(Temp), std::move(F.E), E.Loc));
    Hoisted.push_back(cl::Stmt::ifThenElse(std::move(C.E), std::move(ThenS),
                                           std::move(ElseS), E.Loc));
    return {cl::Expr::localRead(Temp, E.Loc), Join};
  }

  case ExprKind::Call: {
    auto SigIt = Signatures.find(E.Name);
    ast::Type RetTy =
        SigIt != Signatures.end() ? SigIt->second.ReturnType : ast::Type::U32;
    std::string Temp = freshTemp();
    declareLocal(Temp, RetTy == ast::Type::Void ? ast::Type::U32 : RetTy,
                 E.Loc);
    Hoisted.push_back(elabCallInto(E, cl::LValue::local(Temp), Hoisted));
    return {cl::Expr::localRead(Temp, E.Loc),
            RetTy == ast::Type::Void ? ast::Type::U32 : RetTy};
  }
  }
  return {cl::Expr::intConst(0, E.Loc), ast::Type::I32};
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

cl::LValue Elaborator::elabLValue(const ast::Expr &E,
                                  std::vector<cl::StmtPtr> &Hoisted,
                                  ast::Type &TyOut) {
  if (E.Kind == ast::ExprKind::Var) {
    if (auto It = LocalTypes.find(E.Name); It != LocalTypes.end()) {
      TyOut = It->second;
      return cl::LValue::local(E.Name);
    }
    if (auto It = GlobalTypes.find(E.Name); It != GlobalTypes.end()) {
      TyOut = It->second;
      return cl::LValue::global(E.Name);
    }
    Diags.error(E.Loc, "unknown identifier '" + E.Name + "'");
    TyOut = ast::Type::I32;
    return cl::LValue::local(E.Name);
  }
  if (E.Kind == ast::ExprKind::Index) {
    auto It = ArrayElemTypes.find(E.Name);
    if (It == ArrayElemTypes.end()) {
      Diags.error(E.Loc, "unknown array '" + E.Name + "'");
      TyOut = ast::Type::I32;
      return cl::LValue::arrayElem(E.Name, cl::Expr::intConst(0, E.Loc));
    }
    TyOut = It->second;
    Elaborated Idx = elabExpr(*E.Lhs, Hoisted);
    return cl::LValue::arrayElem(E.Name, std::move(Idx.E));
  }
  Diags.error(E.Loc, "assignment target must be a variable or array element");
  TyOut = ast::Type::I32;
  return cl::LValue::local("<bad>");
}

/// Builds the read-back expression for an lvalue (for compound assignment).
static cl::ExprPtr readOf(const cl::LValue &LV, SourceLoc Loc) {
  switch (LV.K) {
  case cl::LValue::Kind::Local:
    return cl::Expr::localRead(LV.Name, Loc);
  case cl::LValue::Kind::Global:
    return cl::Expr::globalRead(LV.Name, Loc);
  case cl::LValue::Kind::ArrayElem:
    return cl::Expr::arrayRead(LV.Name, LV.Index->clone(), Loc);
  }
  return cl::Expr::intConst(0, Loc);
}

cl::StmtPtr Elaborator::elabAssign(const ast::Stmt &S) {
  std::vector<cl::StmtPtr> Hoisted;
  ast::Type LhsTy;
  cl::LValue Dest = elabLValue(*S.Lhs, Hoisted, LhsTy);

  // Direct `x = f(...)` keeps the Clight call-assign form.
  if (S.AOp == ast::AssignOp::None && S.Rhs->Kind == ast::ExprKind::Call) {
    cl::StmtPtr Call = elabCallInto(*S.Rhs, Dest.clone(), Hoisted);
    return sequence(std::move(Hoisted), std::move(Call));
  }

  Elaborated R = elabExpr(*S.Rhs, Hoisted);
  cl::ExprPtr Value;
  if (S.AOp == ast::AssignOp::None) {
    Value = std::move(R.E);
  } else {
    bool Uns = isUnsignedJoin(LhsTy, R.Ty);
    cl::BinOp Op = cl::BinOp::Add;
    switch (S.AOp) {
    case ast::AssignOp::Add: Op = cl::BinOp::Add; break;
    case ast::AssignOp::Sub: Op = cl::BinOp::Sub; break;
    case ast::AssignOp::Mul: Op = cl::BinOp::Mul; break;
    case ast::AssignOp::Div: Op = Uns ? cl::BinOp::DivU : cl::BinOp::DivS; break;
    case ast::AssignOp::Rem: Op = Uns ? cl::BinOp::ModU : cl::BinOp::ModS; break;
    case ast::AssignOp::And: Op = cl::BinOp::And; break;
    case ast::AssignOp::Or: Op = cl::BinOp::Or; break;
    case ast::AssignOp::Xor: Op = cl::BinOp::Xor; break;
    case ast::AssignOp::Shl: Op = cl::BinOp::Shl; break;
    case ast::AssignOp::Shr:
      Op = LhsTy == ast::Type::U32 ? cl::BinOp::ShrU : cl::BinOp::ShrS;
      break;
    case ast::AssignOp::None:
      Op = cl::BinOp::Add;
      break;
    }
    Value = cl::Expr::binary(Op, readOf(Dest, S.Loc), std::move(R.E), S.Loc);
  }
  return sequence(std::move(Hoisted),
                  cl::Stmt::assign(std::move(Dest), std::move(Value), S.Loc));
}

cl::StmtPtr Elaborator::elabLoopish(const ast::Stmt &S) {
  using ast::StmtKind;
  switch (S.Kind) {
  case StmtKind::While: {
    // while (c) body  ~>  loop { [hoist c]; if (c) body else break; }
    std::vector<cl::StmtPtr> Hoisted;
    Elaborated C = elabExpr(*S.Lhs, Hoisted);
    cl::StmtPtr Body = elabStmt(*S.First);
    cl::StmtPtr Guarded = cl::Stmt::ifThenElse(
        std::move(C.E), std::move(Body), cl::Stmt::brk(S.Loc), S.Loc);
    return cl::Stmt::loop(sequence(std::move(Hoisted), std::move(Guarded)),
                          S.Loc);
  }
  case StmtKind::DoWhile: {
    // do body while (c)  ~>  loop { body; [hoist c]; if (c) skip else break; }
    cl::StmtPtr Body = elabStmt(*S.First);
    std::vector<cl::StmtPtr> Hoisted;
    Elaborated C = elabExpr(*S.Lhs, Hoisted);
    cl::StmtPtr Guard = cl::Stmt::ifThenElse(
        std::move(C.E), cl::Stmt::skip(S.Loc), cl::Stmt::brk(S.Loc), S.Loc);
    cl::StmtPtr Tail = sequence(std::move(Hoisted), std::move(Guard));
    return cl::Stmt::loop(
        cl::Stmt::seq(std::move(Body), std::move(Tail), S.Loc), S.Loc);
  }
  case StmtKind::For: {
    // for (i; c; s) body ~> i; loop { [hoist c]; if (c) { body; s } else
    // break; }
    cl::StmtPtr Init =
        S.First ? elabStmt(*S.First) : cl::Stmt::skip(S.Loc);
    std::vector<cl::StmtPtr> Hoisted;
    cl::ExprPtr Cond;
    if (S.Lhs) {
      Elaborated C = elabExpr(*S.Lhs, Hoisted);
      Cond = std::move(C.E);
    } else {
      Cond = cl::Expr::intConst(1, S.Loc);
    }
    cl::StmtPtr Body = elabStmt(*S.Third);
    cl::StmtPtr Step = S.Second ? elabStmt(*S.Second) : cl::Stmt::skip(S.Loc);
    cl::StmtPtr Iter =
        cl::Stmt::seq(std::move(Body), std::move(Step), S.Loc);
    cl::StmtPtr Guarded = cl::Stmt::ifThenElse(
        std::move(Cond), std::move(Iter), cl::Stmt::brk(S.Loc), S.Loc);
    cl::StmtPtr Loop = cl::Stmt::loop(
        sequence(std::move(Hoisted), std::move(Guarded)), S.Loc);
    return cl::Stmt::seq(std::move(Init), std::move(Loop), S.Loc);
  }
  default:
    // Internal invariant, not source-reachable: elabStmt routes only the
    // three loop kinds here. The Skip fallback keeps NDEBUG builds safe.
    assert(false && "not a loop statement");
    return cl::Stmt::skip(S.Loc);
  }
}

cl::StmtPtr Elaborator::elabStmt(const ast::Stmt &S) {
  using ast::StmtKind;
  switch (S.Kind) {
  case StmtKind::Block: {
    if (S.Body.empty())
      return cl::Stmt::skip(S.Loc);
    cl::StmtPtr Out;
    for (const ast::StmtPtr &Child : S.Body) {
      cl::StmtPtr C = elabStmt(*Child);
      Out = Out ? cl::Stmt::seq(std::move(Out), std::move(C), S.Loc)
                : std::move(C);
    }
    return Out;
  }
  case StmtKind::Decl: {
    declareLocal(S.Name, S.DeclType, S.Loc);
    if (!S.Rhs)
      return cl::Stmt::skip(S.Loc);
    if (S.Rhs->Kind == ast::ExprKind::Call) {
      std::vector<cl::StmtPtr> Hoisted;
      cl::StmtPtr Call =
          elabCallInto(*S.Rhs, cl::LValue::local(S.Name), Hoisted);
      return sequence(std::move(Hoisted), std::move(Call));
    }
    std::vector<cl::StmtPtr> Hoisted;
    Elaborated Init = elabExpr(*S.Rhs, Hoisted);
    return sequence(std::move(Hoisted),
                    cl::Stmt::assign(cl::LValue::local(S.Name),
                                     std::move(Init.E), S.Loc));
  }
  case StmtKind::Assign:
    return elabAssign(S);
  case StmtKind::IncDec: {
    std::vector<cl::StmtPtr> Hoisted;
    ast::Type LhsTy;
    cl::LValue Dest = elabLValue(*S.Lhs, Hoisted, LhsTy);
    cl::ExprPtr Value = cl::Expr::binary(
        S.Increment ? cl::BinOp::Add : cl::BinOp::Sub, readOf(Dest, S.Loc),
        cl::Expr::intConst(1, S.Loc), S.Loc);
    return sequence(std::move(Hoisted),
                    cl::Stmt::assign(std::move(Dest), std::move(Value),
                                     S.Loc));
  }
  case StmtKind::ExprStmt: {
    if (S.Rhs->Kind != ast::ExprKind::Call)
      return cl::Stmt::skip(S.Loc); // Parser already diagnosed.
    std::vector<cl::StmtPtr> Hoisted;
    cl::StmtPtr Call = elabCallInto(*S.Rhs, std::nullopt, Hoisted);
    return sequence(std::move(Hoisted), std::move(Call));
  }
  case StmtKind::If: {
    std::vector<cl::StmtPtr> Hoisted;
    Elaborated C = elabExpr(*S.Lhs, Hoisted);
    cl::StmtPtr Then = elabStmt(*S.First);
    cl::StmtPtr Else =
        S.Second ? elabStmt(*S.Second) : cl::Stmt::skip(S.Loc);
    return sequence(std::move(Hoisted),
                    cl::Stmt::ifThenElse(std::move(C.E), std::move(Then),
                                         std::move(Else), S.Loc));
  }
  case StmtKind::While:
  case StmtKind::DoWhile:
  case StmtKind::For:
    return elabLoopish(S);
  case StmtKind::Break:
    return cl::Stmt::brk(S.Loc);
  case StmtKind::Return: {
    if (!S.Rhs) {
      if (CurrentReturnType != ast::Type::Void)
        Diags.error(S.Loc, "non-void function returns no value");
      return cl::Stmt::retVoid(S.Loc);
    }
    if (CurrentReturnType == ast::Type::Void)
      Diags.error(S.Loc, "void function returns a value");
    std::vector<cl::StmtPtr> Hoisted;
    Elaborated V = elabExpr(*S.Rhs, Hoisted);
    return sequence(std::move(Hoisted), cl::Stmt::ret(std::move(V.E), S.Loc));
  }
  }
  return cl::Stmt::skip(S.Loc);
}
