//===- frontend/Token.h - Token definitions ---------------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens of the C subset accepted by the frontend.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_FRONTEND_TOKEN_H
#define QCC_FRONTEND_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace qcc {
namespace frontend {

enum class TokenKind : uint8_t {
  EndOfFile,
  Identifier,
  Number,

  // Keywords.
  KwInt,
  KwU32,
  KwUnsigned,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwDo,
  KwBreak,
  KwContinue, // Recognized so it can be rejected with a clear message.
  KwGoto,     // Likewise.
  KwSwitch,   // Likewise.
  KwReturn,
  KwExtern,
  KwTypedef,
  KwConst,
  KwStatic,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Question,
  Colon,
  Assign,        // =
  PlusAssign,    // +=
  MinusAssign,   // -=
  StarAssign,    // *=
  SlashAssign,   // /=
  PercentAssign, // %=
  AmpAssign,     // &=
  PipeAssign,    // |=
  CaretAssign,   // ^=
  ShlAssign,     // <<=
  ShrAssign,     // >>=
  PlusPlus,      // ++
  MinusMinus,    // --
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Bang,
  Tilde,
  Amp,
  AmpAmp,
  Pipe,
  PipePipe,
  Caret,
  Shl,
  Shr,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq
};

/// Returns a human-readable spelling for diagnostics ("'<<='", "number").
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Numbers carry their 32-bit value and a flag telling
/// whether a `u`/`U` suffix or out-of-int-range magnitude forces unsigned.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  SourceLoc Loc;
  std::string Text;        ///< Identifier spelling.
  uint32_t Value = 0;      ///< Number value.
  bool ForcedUnsigned = false;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace frontend
} // namespace qcc

#endif // QCC_FRONTEND_TOKEN_H
