//===- frontend/Ast.cpp - Parsed C-subset AST -----------------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "frontend/Ast.h"

using namespace qcc::frontend::ast;

ExprPtr Expr::number(uint32_t V, bool ForcedUnsigned, qcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Number;
  E->Value = V;
  E->ForcedUnsigned = ForcedUnsigned;
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::var(std::string Name, qcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Var;
  E->Name = std::move(Name);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::index(std::string Name, ExprPtr Subscript, qcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Index;
  E->Name = std::move(Name);
  E->Lhs = std::move(Subscript);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::unary(UnaryOp Op, ExprPtr Operand, qcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Unary;
  E->UOp = Op;
  E->Lhs = std::move(Operand);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::binary(BinaryOp Op, ExprPtr L, ExprPtr R, qcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Binary;
  E->BOp = Op;
  E->Lhs = std::move(L);
  E->Rhs = std::move(R);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::cond(ExprPtr C, ExprPtr T, ExprPtr F, qcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Cond;
  E->Lhs = std::move(C);
  E->Rhs = std::move(T);
  E->Third = std::move(F);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::callExpr(std::string Callee, std::vector<ExprPtr> Args,
                       qcc::SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Call;
  E->Name = std::move(Callee);
  E->Args = std::move(Args);
  E->Loc = Loc;
  return E;
}

bool Expr::containsCall() const {
  if (Kind == ExprKind::Call)
    return true;
  if (Lhs && Lhs->containsCall())
    return true;
  if (Rhs && Rhs->containsCall())
    return true;
  if (Third && Third->containsCall())
    return true;
  for (const ExprPtr &A : Args)
    if (A->containsCall())
      return true;
  return false;
}

StmtPtr Stmt::block(std::vector<StmtPtr> Body, qcc::SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Block;
  S->Body = std::move(Body);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::decl(Type Ty, std::string Name, ExprPtr Init,
                   qcc::SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Decl;
  S->DeclType = Ty;
  S->Name = std::move(Name);
  S->Rhs = std::move(Init);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::assign(ExprPtr Lhs, AssignOp Op, ExprPtr Rhs,
                     qcc::SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Assign;
  S->AOp = Op;
  S->Lhs = std::move(Lhs);
  S->Rhs = std::move(Rhs);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::incDec(ExprPtr Lhs, bool Increment, qcc::SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::IncDec;
  S->Increment = Increment;
  S->Lhs = std::move(Lhs);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::exprStmt(ExprPtr E, qcc::SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::ExprStmt;
  S->Rhs = std::move(E);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::ifStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else,
                     qcc::SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::If;
  S->Lhs = std::move(Cond);
  S->First = std::move(Then);
  S->Second = std::move(Else);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::whileStmt(ExprPtr Cond, StmtPtr BodyStmt, qcc::SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::While;
  S->Lhs = std::move(Cond);
  S->First = std::move(BodyStmt);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::doWhileStmt(StmtPtr BodyStmt, ExprPtr Cond,
                          qcc::SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::DoWhile;
  S->Lhs = std::move(Cond);
  S->First = std::move(BodyStmt);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::forStmt(StmtPtr Init, ExprPtr Cond, StmtPtr Step,
                      StmtPtr BodyStmt, qcc::SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::For;
  S->First = std::move(Init);
  S->Lhs = std::move(Cond);
  S->Second = std::move(Step);
  S->Third = std::move(BodyStmt);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::breakStmt(qcc::SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Break;
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::returnStmt(ExprPtr Value, qcc::SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Return;
  S->Rhs = std::move(Value);
  S->Loc = Loc;
  return S;
}
