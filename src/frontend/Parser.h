//===- frontend/Parser.h - Recursive-descent parser -------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recursive-descent parser for the C subset. `continue`, `goto` and
/// `switch` are recognized and rejected with targeted messages, mirroring
/// the paper's subset restrictions (section 4.4). `typedef` of integer
/// types is supported so the corpus' `typedef unsigned int u32;` works.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_FRONTEND_PARSER_H
#define QCC_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <map>
#include <vector>

namespace qcc {
namespace frontend {

/// Parses a token stream into a TranslationUnit.
class Parser {
public:
  /// The deepest statement/expression nesting the parser accepts. The
  /// parser is recursive-descent, so input nesting is parser stack depth;
  /// without a limit a hostile source ("(1+(1+(1+..." ten thousand deep)
  /// overflows the host stack. Well past anything a human writes, and far
  /// below what the host stack can take.
  static constexpr unsigned MaxNestingDepth = 200;

  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  /// Parses the whole unit. On errors a partial unit is returned and the
  /// diagnostics engine carries the details.
  ast::TranslationUnit parseTranslationUnit();

private:
  // Token helpers.
  const Token &peek(unsigned Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token advance();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void syncToStatementBoundary();
  void syncToTopLevel();

  // Types.
  bool startsType() const;
  ast::Type parseType(const char *Context);

  // Declarations.
  void parseTypedef(ast::TranslationUnit &TU);
  void parseExtern(ast::TranslationUnit &TU);
  void parseGlobalOrFunction(ast::TranslationUnit &TU);
  ast::StmtPtr parseBlock();
  void parseLocalDecls(std::vector<ast::StmtPtr> &Out);

  // Statements.
  ast::StmtPtr parseStatement();
  ast::StmtPtr parseSimpleStatement(); ///< assignment / call / inc-dec.
  ast::StmtPtr parseIf();
  ast::StmtPtr parseWhile();
  ast::StmtPtr parseDoWhile();
  ast::StmtPtr parseFor();

  // Expressions, by precedence.
  ast::ExprPtr parseExpr();
  ast::ExprPtr parseTernary();
  ast::ExprPtr parseBinary(int MinPrecedence);
  ast::ExprPtr parseUnary();
  ast::ExprPtr parsePostfix();
  ast::ExprPtr parsePrimary();

  ast::ExprPtr errorExpr(SourceLoc Loc);

  /// Depth accounting for MaxNestingDepth; see NestingGuard in Parser.cpp.
  /// Returns false (after diagnosing, once) when the limit is exceeded —
  /// the caller must bail out without recursing further.
  bool enterNesting(SourceLoc Loc);

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  /// typedef aliases: name -> underlying scalar type.
  std::map<std::string, ast::Type> TypeAliases;
  unsigned NestingDepth = 0;
  bool NestingDiagnosed = false;

  friend struct NestingGuard;
};

} // namespace frontend
} // namespace qcc

#endif // QCC_FRONTEND_PARSER_H
