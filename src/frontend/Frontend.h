//===- frontend/Frontend.h - One-call parse facade --------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry point: source text (plus optional -D style defines)
/// straight to a verified Clight core program.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_FRONTEND_FRONTEND_H
#define QCC_FRONTEND_FRONTEND_H

#include "clight/Clight.h"
#include "support/Diagnostics.h"

#include <map>
#include <optional>
#include <string>

namespace qcc {
namespace frontend {

/// Lexes, parses, elaborates, and verifies \p Source. Returns the Clight
/// program, or std::nullopt when \p Diags received errors. \p Defines
/// overrides `#define`s in the source (Figure 7's parameter sweeps).
std::optional<clight::Program>
parseProgram(const std::string &Source, DiagnosticEngine &Diags,
             std::map<std::string, uint32_t> Defines = {});

} // namespace frontend
} // namespace qcc

#endif // QCC_FRONTEND_FRONTEND_H
