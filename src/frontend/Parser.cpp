//===- frontend/Parser.cpp - Recursive-descent parser ---------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <cassert>

using namespace qcc;
using namespace qcc::frontend;
using namespace qcc::frontend::ast;

Parser::Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() &&
         this->Tokens.back().is(TokenKind::EndOfFile) &&
         "token stream must be EndOfFile-terminated");
}

//===----------------------------------------------------------------------===//
// Token helpers
//===----------------------------------------------------------------------===//

const Token &Parser::peek(unsigned Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Tokens.size())
    I = Tokens.size() - 1; // The trailing EndOfFile.
  return Tokens[I];
}

Token Parser::advance() {
  Token T = current();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  Diags.error(current().Loc, std::string("expected ") + tokenKindName(Kind) +
                                 " " + Context + ", found " +
                                 tokenKindName(current().Kind));
  return false;
}

bool Parser::enterNesting(SourceLoc Loc) {
  if (NestingDepth >= MaxNestingDepth) {
    if (!NestingDiagnosed) {
      NestingDiagnosed = true;
      Diags.error(Loc, "nesting exceeds the parser limit of " +
                           std::to_string(MaxNestingDepth) + " levels");
    }
    return false;
  }
  ++NestingDepth;
  return true;
}

namespace qcc::frontend {
/// Balances enterNesting across every exit path of a parse function.
struct NestingGuard {
  Parser &P;
  bool Ok;
  NestingGuard(Parser &P, SourceLoc Loc) : P(P), Ok(P.enterNesting(Loc)) {}
  ~NestingGuard() {
    if (Ok)
      --P.NestingDepth;
  }
};
} // namespace qcc::frontend

void Parser::syncToStatementBoundary() {
  while (!check(TokenKind::EndOfFile)) {
    if (accept(TokenKind::Semicolon))
      return;
    if (check(TokenKind::RBrace) || check(TokenKind::LBrace))
      return;
    advance();
  }
}

void Parser::syncToTopLevel() {
  unsigned Depth = 0;
  while (!check(TokenKind::EndOfFile)) {
    if (check(TokenKind::LBrace)) {
      ++Depth;
    } else if (check(TokenKind::RBrace)) {
      if (Depth == 0) {
        advance();
        return;
      }
      --Depth;
    } else if (check(TokenKind::Semicolon) && Depth == 0) {
      advance();
      return;
    }
    advance();
  }
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

bool Parser::startsType() const {
  switch (current().Kind) {
  case TokenKind::KwInt:
  case TokenKind::KwU32:
  case TokenKind::KwUnsigned:
  case TokenKind::KwVoid:
  case TokenKind::KwConst:
  case TokenKind::KwStatic:
    return true;
  case TokenKind::Identifier:
    return TypeAliases.count(current().Text) != 0;
  default:
    return false;
  }
}

Type Parser::parseType(const char *Context) {
  // `const` and `static` are accepted and ignored (they do not affect
  // stack bounds; const-ness is not enforced).
  while (accept(TokenKind::KwConst) || accept(TokenKind::KwStatic))
    ;
  switch (current().Kind) {
  case TokenKind::KwInt:
    advance();
    return Type::I32;
  case TokenKind::KwU32:
    advance();
    return Type::U32;
  case TokenKind::KwUnsigned:
    advance();
    accept(TokenKind::KwInt); // "unsigned int" == "unsigned".
    return Type::U32;
  case TokenKind::KwVoid:
    advance();
    return Type::Void;
  case TokenKind::Identifier:
    if (auto It = TypeAliases.find(current().Text); It != TypeAliases.end()) {
      advance();
      return It->second;
    }
    [[fallthrough]];
  default:
    Diags.error(current().Loc, std::string("expected a type ") + Context +
                                   ", found " +
                                   tokenKindName(current().Kind));
    return Type::I32;
  }
}

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

TranslationUnit Parser::parseTranslationUnit() {
  TranslationUnit TU;
  while (!check(TokenKind::EndOfFile)) {
    if (check(TokenKind::KwTypedef)) {
      parseTypedef(TU);
      continue;
    }
    if (check(TokenKind::KwExtern)) {
      parseExtern(TU);
      continue;
    }
    if (startsType()) {
      parseGlobalOrFunction(TU);
      continue;
    }
    Diags.error(current().Loc, "expected a declaration at top level, found " +
                                   std::string(tokenKindName(current().Kind)));
    syncToTopLevel();
  }
  return TU;
}

void Parser::parseTypedef(TranslationUnit &) {
  SourceLoc Loc = current().Loc;
  advance(); // typedef
  Type Underlying = parseType("after 'typedef'");
  if (Underlying == Type::Void)
    Diags.error(Loc, "cannot typedef 'void'");
  // `typedef unsigned int u32;` names an existing builtin; accept type
  // keywords here as a harmless no-op alias.
  if (check(TokenKind::KwU32) || check(TokenKind::KwInt) ||
      check(TokenKind::KwUnsigned)) {
    advance();
    expect(TokenKind::Semicolon, "after typedef");
    return;
  }
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected name in typedef");
    syncToStatementBoundary();
    return;
  }
  std::string Name = advance().Text;
  TypeAliases[Name] = Underlying;
  expect(TokenKind::Semicolon, "after typedef");
}

void Parser::parseExtern(TranslationUnit &TU) {
  advance(); // extern
  ExternDecl D;
  D.Loc = current().Loc;
  D.ReturnType = parseType("in extern declaration");
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected function name in extern declaration");
    syncToStatementBoundary();
    return;
  }
  D.Name = advance().Text;
  expect(TokenKind::LParen, "in extern declaration");
  if (!accept(TokenKind::RParen)) {
    if (check(TokenKind::KwVoid) && peek(1).is(TokenKind::RParen)) {
      advance();
    } else {
      do {
        Type T = parseType("in extern parameter list");
        if (T == Type::Void)
          Diags.error(current().Loc, "'void' parameter type");
        D.ParamTypes.push_back(T);
        // Parameter names are optional in declarations.
        if (check(TokenKind::Identifier))
          advance();
      } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "in extern declaration");
  }
  expect(TokenKind::Semicolon, "after extern declaration");
  TU.Externs.push_back(std::move(D));
}

void Parser::parseGlobalOrFunction(TranslationUnit &TU) {
  SourceLoc Loc = current().Loc;
  Type Ty = parseType("at top level");
  if (!check(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected a name after type");
    syncToTopLevel();
    return;
  }
  std::string Name = advance().Text;

  if (check(TokenKind::LParen)) {
    // Function definition.
    advance();
    FunctionDecl F;
    F.ReturnType = Ty;
    F.Name = std::move(Name);
    F.Loc = Loc;
    if (!accept(TokenKind::RParen)) {
      if (check(TokenKind::KwVoid) && peek(1).is(TokenKind::RParen)) {
        advance();
      } else {
        do {
          ParamDecl P;
          P.Loc = current().Loc;
          P.Ty = parseType("in parameter list");
          if (P.Ty == Type::Void)
            Diags.error(P.Loc, "'void' parameter type");
          if (!check(TokenKind::Identifier)) {
            Diags.error(current().Loc, "expected parameter name");
            break;
          }
          P.Name = advance().Text;
          F.Params.push_back(std::move(P));
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after parameter list");
    }
    if (accept(TokenKind::Semicolon)) {
      // A forward declaration of an internal function: remember nothing;
      // the elaborator resolves calls against definitions.
      return;
    }
    if (!check(TokenKind::LBrace)) {
      Diags.error(current().Loc, "expected function body");
      syncToTopLevel();
      return;
    }
    F.Body = parseBlock();
    TU.Functions.push_back(std::move(F));
    return;
  }

  // Global variable(s): one or more declarators.
  for (;;) {
    GlobalDecl G;
    G.Ty = Ty;
    G.Name = Name;
    G.Loc = Loc;
    if (Ty == Type::Void)
      Diags.error(Loc, "'void' global variable");
    if (accept(TokenKind::LBracket)) {
      G.IsArray = true;
      if (!check(TokenKind::RBracket))
        G.ArraySize = parseExpr();
      expect(TokenKind::RBracket, "after array size");
    }
    if (accept(TokenKind::Assign)) {
      if (accept(TokenKind::LBrace)) {
        if (!check(TokenKind::RBrace)) {
          do {
            G.Init.push_back(parseExpr());
          } while (accept(TokenKind::Comma) && !check(TokenKind::RBrace));
        }
        expect(TokenKind::RBrace, "after initializer list");
        if (!G.IsArray)
          Diags.error(G.Loc, "brace initializer on scalar global");
      } else {
        G.Init.push_back(parseExpr());
      }
    }
    TU.Globals.push_back(std::move(G));
    if (!accept(TokenKind::Comma))
      break;
    if (!check(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected declarator after ','");
      break;
    }
    Loc = current().Loc;
    Name = advance().Text;
  }
  expect(TokenKind::Semicolon, "after global declaration");
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Parser::parseBlock() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::LBrace, "to open block");
  std::vector<StmtPtr> Body;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    if (startsType()) {
      parseLocalDecls(Body);
      continue;
    }
    Body.push_back(parseStatement());
  }
  expect(TokenKind::RBrace, "to close block");
  return Stmt::block(std::move(Body), Loc);
}

void Parser::parseLocalDecls(std::vector<StmtPtr> &Out) {
  SourceLoc Loc = current().Loc;
  Type Ty = parseType("in declaration");
  if (Ty == Type::Void) {
    Diags.error(Loc, "'void' local variable");
    syncToStatementBoundary();
    return;
  }
  do {
    if (!check(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected variable name in declaration");
      syncToStatementBoundary();
      return;
    }
    SourceLoc NameLoc = current().Loc;
    std::string Name = advance().Text;
    if (check(TokenKind::LBracket)) {
      Diags.error(NameLoc,
                  "local arrays are not supported; use a global array "
                  "(the subset keeps frame sizes constant)");
      syncToStatementBoundary();
      return;
    }
    ExprPtr Init;
    if (accept(TokenKind::Assign))
      Init = parseExpr();
    Out.push_back(Stmt::decl(Ty, std::move(Name), std::move(Init), NameLoc));
  } while (accept(TokenKind::Comma));
  expect(TokenKind::Semicolon, "after declaration");
}

StmtPtr Parser::parseStatement() {
  NestingGuard Guard(*this, current().Loc);
  if (!Guard.Ok) {
    SourceLoc Loc = current().Loc;
    syncToStatementBoundary();
    return Stmt::block({}, Loc);
  }
  switch (current().Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwDo:
    return parseDoWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwBreak: {
    SourceLoc Loc = advance().Loc;
    expect(TokenKind::Semicolon, "after 'break'");
    return Stmt::breakStmt(Loc);
  }
  case TokenKind::KwReturn: {
    SourceLoc Loc = advance().Loc;
    ExprPtr Value;
    if (!check(TokenKind::Semicolon))
      Value = parseExpr();
    expect(TokenKind::Semicolon, "after 'return'");
    return Stmt::returnStmt(std::move(Value), Loc);
  }
  case TokenKind::KwContinue:
  case TokenKind::KwGoto:
  case TokenKind::KwSwitch: {
    Diags.error(current().Loc,
                std::string(tokenKindName(current().Kind)) +
                    " is outside the verified subset (paper section 4.4)");
    syncToStatementBoundary();
    return Stmt::block({}, current().Loc);
  }
  case TokenKind::Semicolon: {
    SourceLoc Loc = advance().Loc;
    return Stmt::block({}, Loc); // Empty statement.
  }
  default: {
    StmtPtr S = parseSimpleStatement();
    expect(TokenKind::Semicolon, "after statement");
    return S;
  }
  }
}

StmtPtr Parser::parseSimpleStatement() {
  SourceLoc Loc = current().Loc;

  // Prefix increment/decrement.
  if (check(TokenKind::PlusPlus) || check(TokenKind::MinusMinus)) {
    bool Inc = advance().is(TokenKind::PlusPlus);
    ExprPtr Target = parsePostfix();
    if (Target->Kind != ExprKind::Var && Target->Kind != ExprKind::Index)
      Diags.error(Loc, "increment target must be a variable or array element");
    return Stmt::incDec(std::move(Target), Inc, Loc);
  }

  ExprPtr E = parseExpr();

  // Postfix increment/decrement.
  if (check(TokenKind::PlusPlus) || check(TokenKind::MinusMinus)) {
    bool Inc = advance().is(TokenKind::PlusPlus);
    if (E->Kind != ExprKind::Var && E->Kind != ExprKind::Index)
      Diags.error(Loc, "increment target must be a variable or array element");
    return Stmt::incDec(std::move(E), Inc, Loc);
  }

  // Assignment forms.
  AssignOp Op;
  switch (current().Kind) {
  case TokenKind::Assign: Op = AssignOp::None; break;
  case TokenKind::PlusAssign: Op = AssignOp::Add; break;
  case TokenKind::MinusAssign: Op = AssignOp::Sub; break;
  case TokenKind::StarAssign: Op = AssignOp::Mul; break;
  case TokenKind::SlashAssign: Op = AssignOp::Div; break;
  case TokenKind::PercentAssign: Op = AssignOp::Rem; break;
  case TokenKind::AmpAssign: Op = AssignOp::And; break;
  case TokenKind::PipeAssign: Op = AssignOp::Or; break;
  case TokenKind::CaretAssign: Op = AssignOp::Xor; break;
  case TokenKind::ShlAssign: Op = AssignOp::Shl; break;
  case TokenKind::ShrAssign: Op = AssignOp::Shr; break;
  default:
    // A bare expression statement: only calls make sense (expressions have
    // no side effects).
    if (E->Kind != ExprKind::Call)
      Diags.error(Loc, "expression statement has no effect (only calls are "
                       "allowed here)");
    return Stmt::exprStmt(std::move(E), Loc);
  }
  advance();
  if (E->Kind != ExprKind::Var && E->Kind != ExprKind::Index)
    Diags.error(Loc, "assignment target must be a variable or array element");
  ExprPtr Rhs = parseExpr();
  return Stmt::assign(std::move(E), Op, std::move(Rhs), Loc);
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = advance().Loc; // if
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after condition");
  StmtPtr Then = parseStatement();
  StmtPtr Else;
  if (accept(TokenKind::KwElse))
    Else = parseStatement();
  return Stmt::ifStmt(std::move(Cond), std::move(Then), std::move(Else), Loc);
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = advance().Loc; // while
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after condition");
  StmtPtr Body = parseStatement();
  return Stmt::whileStmt(std::move(Cond), std::move(Body), Loc);
}

StmtPtr Parser::parseDoWhile() {
  SourceLoc Loc = advance().Loc; // do
  StmtPtr Body = parseStatement();
  expect(TokenKind::KwWhile, "after do-body");
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after condition");
  expect(TokenKind::Semicolon, "after do-while");
  return Stmt::doWhileStmt(std::move(Body), std::move(Cond), Loc);
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = advance().Loc; // for
  expect(TokenKind::LParen, "after 'for'");
  StmtPtr Init;
  if (!check(TokenKind::Semicolon)) {
    if (startsType()) {
      std::vector<StmtPtr> Decls;
      // parseLocalDecls consumes the ';'.
      parseLocalDecls(Decls);
      Init = Stmt::block(std::move(Decls), Loc);
    } else {
      Init = parseSimpleStatement();
      expect(TokenKind::Semicolon, "after for-initializer");
    }
  } else {
    advance();
  }
  ExprPtr Cond;
  if (!check(TokenKind::Semicolon))
    Cond = parseExpr();
  expect(TokenKind::Semicolon, "after for-condition");
  StmtPtr Step;
  if (!check(TokenKind::RParen))
    Step = parseSimpleStatement();
  expect(TokenKind::RParen, "after for-step");
  StmtPtr Body = parseStatement();
  return Stmt::forStmt(std::move(Init), std::move(Cond), std::move(Step),
                       std::move(Body), Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::errorExpr(SourceLoc Loc) {
  return Expr::number(0, false, Loc);
}

ExprPtr Parser::parseExpr() { return parseTernary(); }

ExprPtr Parser::parseTernary() {
  // Every deep expression recursion — nested parentheses, subscripts,
  // call arguments, ternaries — re-enters through here.
  NestingGuard Guard(*this, current().Loc);
  if (!Guard.Ok) {
    SourceLoc Loc = current().Loc;
    syncToStatementBoundary();
    return errorExpr(Loc);
  }
  ExprPtr Cond = parseBinary(0);
  if (!accept(TokenKind::Question))
    return Cond;
  SourceLoc Loc = Cond->Loc;
  ExprPtr Then = parseTernary();
  expect(TokenKind::Colon, "in conditional expression");
  ExprPtr Else = parseTernary();
  return Expr::cond(std::move(Cond), std::move(Then), std::move(Else), Loc);
}

namespace {
/// Binary operator precedence, C-style. Returns -1 for non-operators.
int precedenceOf(TokenKind Kind, BinaryOp &Op) {
  switch (Kind) {
  case TokenKind::PipePipe: Op = BinaryOp::LOr; return 1;
  case TokenKind::AmpAmp: Op = BinaryOp::LAnd; return 2;
  case TokenKind::Pipe: Op = BinaryOp::BitOr; return 3;
  case TokenKind::Caret: Op = BinaryOp::BitXor; return 4;
  case TokenKind::Amp: Op = BinaryOp::BitAnd; return 5;
  case TokenKind::EqEq: Op = BinaryOp::Eq; return 6;
  case TokenKind::NotEq: Op = BinaryOp::Ne; return 6;
  case TokenKind::Lt: Op = BinaryOp::Lt; return 7;
  case TokenKind::Le: Op = BinaryOp::Le; return 7;
  case TokenKind::Gt: Op = BinaryOp::Gt; return 7;
  case TokenKind::Ge: Op = BinaryOp::Ge; return 7;
  case TokenKind::Shl: Op = BinaryOp::Shl; return 8;
  case TokenKind::Shr: Op = BinaryOp::Shr; return 8;
  case TokenKind::Plus: Op = BinaryOp::Add; return 9;
  case TokenKind::Minus: Op = BinaryOp::Sub; return 9;
  case TokenKind::Star: Op = BinaryOp::Mul; return 10;
  case TokenKind::Slash: Op = BinaryOp::Div; return 10;
  case TokenKind::Percent: Op = BinaryOp::Rem; return 10;
  default: return -1;
  }
}
} // namespace

ExprPtr Parser::parseBinary(int MinPrecedence) {
  ExprPtr Lhs = parseUnary();
  for (;;) {
    BinaryOp Op;
    int Prec = precedenceOf(current().Kind, Op);
    if (Prec < 0 || Prec < MinPrecedence)
      return Lhs;
    SourceLoc Loc = advance().Loc;
    ExprPtr Rhs = parseBinary(Prec + 1); // All our binaries left-associate.
    Lhs = Expr::binary(Op, std::move(Lhs), std::move(Rhs), Loc);
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = current().Loc;
  // Prefix-operator chains self-recurse without passing parseTernary, so
  // they carry their own nesting guard.
  auto Recurse = [&]() -> ExprPtr {
    NestingGuard Guard(*this, Loc);
    if (!Guard.Ok) {
      syncToStatementBoundary();
      return errorExpr(Loc);
    }
    return parseUnary();
  };
  switch (current().Kind) {
  case TokenKind::Minus:
    advance();
    return Expr::unary(UnaryOp::Neg, Recurse(), Loc);
  case TokenKind::Plus:
    advance();
    return Expr::unary(UnaryOp::Plus, Recurse(), Loc);
  case TokenKind::Bang:
    advance();
    return Expr::unary(UnaryOp::Not, Recurse(), Loc);
  case TokenKind::Tilde:
    advance();
    return Expr::unary(UnaryOp::BitNot, Recurse(), Loc);
  case TokenKind::PlusPlus:
  case TokenKind::MinusMinus:
    Diags.error(Loc, "increment/decrement is only supported as a statement");
    advance();
    return Recurse();
  case TokenKind::Star:
  case TokenKind::Amp:
    Diags.error(Loc, "pointers are outside the verified subset");
    advance();
    return Recurse();
  default:
    return parsePostfix();
  }
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  for (;;) {
    if (check(TokenKind::LBracket)) {
      SourceLoc Loc = advance().Loc;
      if (E->Kind != ExprKind::Var) {
        Diags.error(Loc, "subscript base must be a named array");
        parseExpr();
        expect(TokenKind::RBracket, "after subscript");
        return errorExpr(Loc);
      }
      ExprPtr Subscript = parseExpr();
      expect(TokenKind::RBracket, "after subscript");
      E = Expr::index(E->Name, std::move(Subscript), Loc);
      continue;
    }
    if (check(TokenKind::LParen)) {
      SourceLoc Loc = advance().Loc;
      if (E->Kind != ExprKind::Var) {
        Diags.error(Loc, "call target must be a function name (function "
                         "pointers are outside the verified subset)");
      }
      std::vector<ExprPtr> Args;
      if (!check(TokenKind::RParen)) {
        do {
          Args.push_back(parseExpr());
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after call arguments");
      E = Expr::callExpr(E->Kind == ExprKind::Var ? E->Name : "<bad>",
                         std::move(Args), Loc);
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::Number: {
    Token T = advance();
    return Expr::number(T.Value, T.ForcedUnsigned, Loc);
  }
  case TokenKind::Identifier: {
    Token T = advance();
    return Expr::var(T.Text, Loc);
  }
  case TokenKind::LParen: {
    advance();
    // A parenthesized cast like "(u32) x" is accepted and ignored: all
    // values are 32-bit words.
    if (startsType()) {
      parseType("in cast");
      expect(TokenKind::RParen, "after cast");
      // Cast chains "(u32)(u32)...x" also bypass parseTernary.
      NestingGuard Guard(*this, Loc);
      if (!Guard.Ok) {
        syncToStatementBoundary();
        return errorExpr(Loc);
      }
      return parseUnary();
    }
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "after expression");
    return E;
  }
  default:
    Diags.error(Loc, "expected an expression, found " +
                         std::string(tokenKindName(current().Kind)));
    advance();
    return errorExpr(Loc);
  }
}
