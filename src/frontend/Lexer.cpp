//===- frontend/Lexer.cpp - Lexer with a #define mini-preprocessor --------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <limits>

using namespace qcc;
using namespace qcc::frontend;

const char *qcc::frontend::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile: return "end of file";
  case TokenKind::Identifier: return "identifier";
  case TokenKind::Number: return "number";
  case TokenKind::KwInt: return "'int'";
  case TokenKind::KwU32: return "'u32'";
  case TokenKind::KwUnsigned: return "'unsigned'";
  case TokenKind::KwVoid: return "'void'";
  case TokenKind::KwIf: return "'if'";
  case TokenKind::KwElse: return "'else'";
  case TokenKind::KwWhile: return "'while'";
  case TokenKind::KwFor: return "'for'";
  case TokenKind::KwDo: return "'do'";
  case TokenKind::KwBreak: return "'break'";
  case TokenKind::KwContinue: return "'continue'";
  case TokenKind::KwGoto: return "'goto'";
  case TokenKind::KwSwitch: return "'switch'";
  case TokenKind::KwReturn: return "'return'";
  case TokenKind::KwExtern: return "'extern'";
  case TokenKind::KwTypedef: return "'typedef'";
  case TokenKind::KwConst: return "'const'";
  case TokenKind::KwStatic: return "'static'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBrace: return "'{'";
  case TokenKind::RBrace: return "'}'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Semicolon: return "';'";
  case TokenKind::Comma: return "','";
  case TokenKind::Question: return "'?'";
  case TokenKind::Colon: return "':'";
  case TokenKind::Assign: return "'='";
  case TokenKind::PlusAssign: return "'+='";
  case TokenKind::MinusAssign: return "'-='";
  case TokenKind::StarAssign: return "'*='";
  case TokenKind::SlashAssign: return "'/='";
  case TokenKind::PercentAssign: return "'%='";
  case TokenKind::AmpAssign: return "'&='";
  case TokenKind::PipeAssign: return "'|='";
  case TokenKind::CaretAssign: return "'^='";
  case TokenKind::ShlAssign: return "'<<='";
  case TokenKind::ShrAssign: return "'>>='";
  case TokenKind::PlusPlus: return "'++'";
  case TokenKind::MinusMinus: return "'--'";
  case TokenKind::Plus: return "'+'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Percent: return "'%'";
  case TokenKind::Bang: return "'!'";
  case TokenKind::Tilde: return "'~'";
  case TokenKind::Amp: return "'&'";
  case TokenKind::AmpAmp: return "'&&'";
  case TokenKind::Pipe: return "'|'";
  case TokenKind::PipePipe: return "'||'";
  case TokenKind::Caret: return "'^'";
  case TokenKind::Shl: return "'<<'";
  case TokenKind::Shr: return "'>>'";
  case TokenKind::Lt: return "'<'";
  case TokenKind::Le: return "'<='";
  case TokenKind::Gt: return "'>'";
  case TokenKind::Ge: return "'>='";
  case TokenKind::EqEq: return "'=='";
  case TokenKind::NotEq: return "'!='";
  }
  return "<bad token>";
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags,
             std::map<std::string, uint32_t> Defines)
    : Source(std::move(Source)), Diags(Diags),
      Overrides(std::move(Defines)) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = peek();
  if (C == '\0')
    return C;
  ++Pos;
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char C) {
  if (peek() != C)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    if (C == '#') {
      lexDirective();
      continue;
    }
    return;
  }
}

void Lexer::lexDirective() {
  SourceLoc Start = here();
  std::string LineText;
  while (peek() != '\n' && peek() != '\0')
    LineText += advance();

  // Strip trailing comments from the directive line.
  if (size_t C = LineText.find("//"); C != std::string::npos)
    LineText.resize(C);
  if (size_t C = LineText.find("/*"); C != std::string::npos)
    LineText.resize(C);

  // Parse "#define NAME <number>". Anything else is skipped with a warning
  // ("#include" lines in adapted corpus files are harmless).
  size_t I = 1; // Past '#'.
  auto SkipSpace = [&] {
    while (I < LineText.size() && (LineText[I] == ' ' || LineText[I] == '\t'))
      ++I;
  };
  auto ReadWord = [&] {
    std::string W;
    while (I < LineText.size() &&
           (std::isalnum(static_cast<unsigned char>(LineText[I])) ||
            LineText[I] == '_'))
      W += LineText[I++];
    return W;
  };
  SkipSpace();
  std::string Keyword = ReadWord();
  if (Keyword != "define") {
    if (Keyword != "include")
      Diags.warning(Start, "ignoring unsupported directive '#" + Keyword +
                               "'");
    return;
  }
  SkipSpace();
  std::string Name = ReadWord();
  if (Name.empty()) {
    Diags.error(Start, "expected macro name after '#define'");
    return;
  }
  SkipSpace();
  std::string Body = LineText.substr(I);
  while (!Body.empty() && (Body.back() == ' ' || Body.back() == '\t'))
    Body.pop_back();
  // Strip one level of parentheses: "#define N (17)".
  if (Body.size() >= 2 && Body.front() == '(' && Body.back() == ')')
    Body = Body.substr(1, Body.size() - 2);
  if (Body.empty()) {
    Diags.warning(Start, "ignoring valueless macro '" + Name + "'");
    return;
  }
  errno = 0;
  char *End = nullptr;
  unsigned long long V = strtoull(Body.c_str(), &End, 0);
  // Allow a trailing u/U/l/L suffix.
  while (End && (*End == 'u' || *End == 'U' || *End == 'l' || *End == 'L'))
    ++End;
  if (!End || *End != '\0' ||
      V > std::numeric_limits<uint32_t>::max()) {
    Diags.error(Start, "macro '" + Name +
                           "' is not a 32-bit integer literal: '" + Body +
                           "'");
    return;
  }
  if (!Overrides.count(Name))
    Macros[Name] = static_cast<uint32_t>(V);
}

Token Lexer::makeToken(TokenKind Kind) {
  Token T;
  T.Kind = Kind;
  T.Loc = here();
  return T;
}

Token Lexer::lexNumber() {
  Token T = makeToken(TokenKind::Number);
  uint64_t Value = 0;
  bool Hex = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    Hex = true;
    if (!std::isxdigit(static_cast<unsigned char>(peek())))
      Diags.error(T.Loc, "expected hexadecimal digits after '0x'");
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      char C = advance();
      unsigned D = C <= '9' ? C - '0' : (C | 0x20) - 'a' + 10;
      Value = Value * 16 + D;
      if (Value > std::numeric_limits<uint32_t>::max()) {
        Diags.error(T.Loc, "integer literal exceeds 32 bits");
        Value &= 0xffffffffull;
      }
    }
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      Value = Value * 10 + (advance() - '0');
      if (Value > std::numeric_limits<uint32_t>::max()) {
        Diags.error(T.Loc, "integer literal exceeds 32 bits");
        Value %= 1ull << 32;
      }
    }
  }
  bool Suffixed = false;
  while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L') {
    if (peek() == 'u' || peek() == 'U')
      Suffixed = true;
    advance();
  }
  T.Value = static_cast<uint32_t>(Value);
  T.ForcedUnsigned =
      Suffixed || Hex || Value > 0x7fffffffull;
  return T;
}

Token Lexer::lexCharLiteral() {
  Token T = makeToken(TokenKind::Number);
  advance(); // Opening quote.
  char C = advance();
  if (C == '\\') {
    char E = advance();
    switch (E) {
    case 'n': C = '\n'; break;
    case 't': C = '\t'; break;
    case 'r': C = '\r'; break;
    case '0': C = '\0'; break;
    case '\\': C = '\\'; break;
    case '\'': C = '\''; break;
    default:
      Diags.error(T.Loc, std::string("unsupported escape '\\") + E + "'");
      C = E;
    }
  }
  if (!match('\''))
    Diags.error(T.Loc, "unterminated character literal");
  T.Value = static_cast<uint32_t>(static_cast<unsigned char>(C));
  return T;
}

Token Lexer::lexIdentifierOrKeyword() {
  Token T = makeToken(TokenKind::Identifier);
  std::string Word;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Word += advance();

  static const std::map<std::string, TokenKind> Keywords = {
      {"int", TokenKind::KwInt},         {"u32", TokenKind::KwU32},
      {"unsigned", TokenKind::KwUnsigned}, {"void", TokenKind::KwVoid},
      {"if", TokenKind::KwIf},           {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},     {"for", TokenKind::KwFor},
      {"do", TokenKind::KwDo},           {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue}, {"goto", TokenKind::KwGoto},
      {"switch", TokenKind::KwSwitch},   {"return", TokenKind::KwReturn},
      {"extern", TokenKind::KwExtern},   {"typedef", TokenKind::KwTypedef},
      {"const", TokenKind::KwConst},     {"static", TokenKind::KwStatic}};
  if (auto It = Keywords.find(Word); It != Keywords.end()) {
    T.Kind = It->second;
    return T;
  }

  // Macro substitution (caller overrides win).
  if (auto It = Overrides.find(Word); It != Overrides.end()) {
    T.Kind = TokenKind::Number;
    T.Value = It->second;
    T.ForcedUnsigned = It->second > 0x7fffffffu;
    return T;
  }
  if (auto It = Macros.find(Word); It != Macros.end()) {
    T.Kind = TokenKind::Number;
    T.Value = It->second;
    T.ForcedUnsigned = It->second > 0x7fffffffu;
    return T;
  }

  T.Text = std::move(Word);
  return T;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    skipWhitespaceAndComments();
    char C = peek();
    if (C == '\0') {
      Tokens.push_back(makeToken(TokenKind::EndOfFile));
      return Tokens;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      Tokens.push_back(lexNumber());
      continue;
    }
    if (C == '\'') {
      Tokens.push_back(lexCharLiteral());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      Tokens.push_back(lexIdentifierOrKeyword());
      continue;
    }

    Token T = makeToken(TokenKind::EndOfFile);
    advance();
    switch (C) {
    case '(': T.Kind = TokenKind::LParen; break;
    case ')': T.Kind = TokenKind::RParen; break;
    case '{': T.Kind = TokenKind::LBrace; break;
    case '}': T.Kind = TokenKind::RBrace; break;
    case '[': T.Kind = TokenKind::LBracket; break;
    case ']': T.Kind = TokenKind::RBracket; break;
    case ';': T.Kind = TokenKind::Semicolon; break;
    case ',': T.Kind = TokenKind::Comma; break;
    case '?': T.Kind = TokenKind::Question; break;
    case ':': T.Kind = TokenKind::Colon; break;
    case '+':
      T.Kind = match('+')   ? TokenKind::PlusPlus
               : match('=') ? TokenKind::PlusAssign
                            : TokenKind::Plus;
      break;
    case '-':
      T.Kind = match('-')   ? TokenKind::MinusMinus
               : match('=') ? TokenKind::MinusAssign
                            : TokenKind::Minus;
      break;
    case '*':
      T.Kind = match('=') ? TokenKind::StarAssign : TokenKind::Star;
      break;
    case '/':
      T.Kind = match('=') ? TokenKind::SlashAssign : TokenKind::Slash;
      break;
    case '%':
      T.Kind = match('=') ? TokenKind::PercentAssign : TokenKind::Percent;
      break;
    case '!':
      T.Kind = match('=') ? TokenKind::NotEq : TokenKind::Bang;
      break;
    case '~': T.Kind = TokenKind::Tilde; break;
    case '&':
      T.Kind = match('&')   ? TokenKind::AmpAmp
               : match('=') ? TokenKind::AmpAssign
                            : TokenKind::Amp;
      break;
    case '|':
      T.Kind = match('|')   ? TokenKind::PipePipe
               : match('=') ? TokenKind::PipeAssign
                            : TokenKind::Pipe;
      break;
    case '^':
      T.Kind = match('=') ? TokenKind::CaretAssign : TokenKind::Caret;
      break;
    case '<':
      if (match('<'))
        T.Kind = match('=') ? TokenKind::ShlAssign : TokenKind::Shl;
      else
        T.Kind = match('=') ? TokenKind::Le : TokenKind::Lt;
      break;
    case '>':
      if (match('>'))
        T.Kind = match('=') ? TokenKind::ShrAssign : TokenKind::Shr;
      else
        T.Kind = match('=') ? TokenKind::Ge : TokenKind::Gt;
      break;
    case '=':
      T.Kind = match('=') ? TokenKind::EqEq : TokenKind::Assign;
      break;
    default:
      Diags.error(T.Loc, std::string("unexpected character '") + C + "'");
      continue; // Skip the bad character and keep lexing.
    }
    Tokens.push_back(T);
  }
}
