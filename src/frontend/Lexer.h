//===- frontend/Lexer.h - Lexer with a #define mini-preprocessor *- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lexer for the C subset. A tiny preprocessor supports the corpus'
/// parameter style (`#define ALEN 4096`): object-like macros bound to
/// integer literals are substituted for matching identifiers. Caller
/// overrides (the driver's -D equivalents) take precedence, which is how
/// Figure 7's sweeps instantiate `ALEN` without editing source text.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_FRONTEND_LEXER_H
#define QCC_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>
#include <vector>

namespace qcc {
namespace frontend {

/// Lexes a whole buffer into a token vector.
class Lexer {
public:
  /// \p Defines overrides any `#define` of the same name found in the
  /// source text.
  Lexer(std::string Source, DiagnosticEngine &Diags,
        std::map<std::string, uint32_t> Defines = {});

  /// Lexes all tokens. Always ends with an EndOfFile token, even after
  /// errors.
  std::vector<Token> lexAll();

  /// The macro table in effect after lexing (source defines overridden by
  /// caller-provided ones).
  const std::map<std::string, uint32_t> &defines() const { return Macros; }

private:
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char C);
  void skipWhitespaceAndComments();
  void lexDirective();
  Token lexNumber();
  Token lexCharLiteral();
  Token lexIdentifierOrKeyword();
  Token makeToken(TokenKind Kind);
  SourceLoc here() const { return SourceLoc(Line, Column); }

  std::string Source;
  DiagnosticEngine &Diags;
  std::map<std::string, uint32_t> Macros;
  std::map<std::string, uint32_t> Overrides;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace frontend
} // namespace qcc

#endif // QCC_FRONTEND_LEXER_H
