//===- frontend/Frontend.cpp - One-call parse facade ----------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"

#include "clight/Verify.h"
#include "frontend/Elaborator.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"

using namespace qcc;
using namespace qcc::frontend;

std::optional<clight::Program>
qcc::frontend::parseProgram(const std::string &Source, DiagnosticEngine &Diags,
                            std::map<std::string, uint32_t> Defines) {
  Lexer Lex(Source, Diags, std::move(Defines));
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags.hasErrors())
    return std::nullopt;

  Parser P(std::move(Tokens), Diags);
  ast::TranslationUnit TU = P.parseTranslationUnit();
  if (Diags.hasErrors())
    return std::nullopt;

  Elaborator E(Diags);
  clight::Program Program = E.run(TU);
  if (Diags.hasErrors())
    return std::nullopt;

  if (!clight::verify(Program, Diags))
    return std::nullopt;
  return Program;
}
