//===- frontend/Ast.h - Parsed C-subset AST ---------------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The surface AST produced by the parser. Unlike Clight core, this level
/// still has `while`/`for`/`do`, compound assignment, ++/--, short-circuit
/// operators, and *calls inside expressions*; the elaborator desugars all
/// of that (the analogue of CompCert's SimplExpr pass from C to Clight).
///
//===----------------------------------------------------------------------===//

#ifndef QCC_FRONTEND_AST_H
#define QCC_FRONTEND_AST_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace qcc {
namespace frontend {
namespace ast {

/// Static types of the subset. Arrays are declared forms, not first-class
/// values.
enum class Type : uint8_t { Void, I32, U32 };

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  Number,
  Var,
  Index, ///< name[e]
  Unary,
  Binary,
  Cond, ///< c ? t : f
  Call  ///< f(args) in expression position; hoisted by the elaborator.
};

enum class UnaryOp : uint8_t { Neg, Not, BitNot, Plus };

enum class BinaryOp : uint8_t {
  Add, Sub, Mul, Div, Rem,
  BitAnd, BitOr, BitXor, Shl, Shr,
  Lt, Le, Gt, Ge, Eq, Ne,
  LAnd, LOr
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind Kind;
  SourceLoc Loc;

  uint32_t Value = 0;          ///< Number.
  bool ForcedUnsigned = false; ///< Number.
  std::string Name;            ///< Var / Index base / Call callee.
  UnaryOp UOp = UnaryOp::Neg;
  BinaryOp BOp = BinaryOp::Add;
  ExprPtr Lhs;                 ///< Unary operand / Binary lhs / Cond cond /
                               ///< Index subscript.
  ExprPtr Rhs;                 ///< Binary rhs / Cond then.
  ExprPtr Third;               ///< Cond else.
  std::vector<ExprPtr> Args;   ///< Call.

  static ExprPtr number(uint32_t V, bool ForcedUnsigned, SourceLoc Loc);
  static ExprPtr var(std::string Name, SourceLoc Loc);
  static ExprPtr index(std::string Name, ExprPtr Subscript, SourceLoc Loc);
  static ExprPtr unary(UnaryOp Op, ExprPtr E, SourceLoc Loc);
  static ExprPtr binary(BinaryOp Op, ExprPtr L, ExprPtr R, SourceLoc Loc);
  static ExprPtr cond(ExprPtr C, ExprPtr T, ExprPtr F, SourceLoc Loc);
  static ExprPtr callExpr(std::string Callee, std::vector<ExprPtr> Args,
                          SourceLoc Loc);

  /// True if this subtree contains a Call node.
  bool containsCall() const;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Block,
  Decl,     ///< type name [= init];
  Assign,   ///< lhs op= rhs (op may be plain =)
  IncDec,   ///< lhs++ / lhs--
  ExprStmt, ///< call-for-effect
  If,
  While,
  DoWhile,
  For,
  Break,
  Return
};

/// Compound-assignment operator discriminator; None means plain '='.
enum class AssignOp : uint8_t {
  None, Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;

  std::vector<StmtPtr> Body; ///< Block.
  Type DeclType = Type::U32; ///< Decl.
  std::string Name;          ///< Decl.
  AssignOp AOp = AssignOp::None; ///< Assign.
  bool Increment = true;     ///< IncDec: ++ or --.
  ExprPtr Lhs;               ///< Assign/IncDec target (Var or Index);
                             ///< If/While/DoWhile/For condition.
  ExprPtr Rhs;               ///< Assign rhs / Decl init / Return value /
                             ///< ExprStmt expression.
  StmtPtr First;             ///< If then / loop body / For init.
  StmtPtr Second;            ///< If else / For step.
  StmtPtr Third;             ///< For body.

  static StmtPtr block(std::vector<StmtPtr> Body, SourceLoc Loc);
  static StmtPtr decl(Type Ty, std::string Name, ExprPtr Init, SourceLoc Loc);
  static StmtPtr assign(ExprPtr Lhs, AssignOp Op, ExprPtr Rhs, SourceLoc Loc);
  static StmtPtr incDec(ExprPtr Lhs, bool Increment, SourceLoc Loc);
  static StmtPtr exprStmt(ExprPtr E, SourceLoc Loc);
  static StmtPtr ifStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else,
                        SourceLoc Loc);
  static StmtPtr whileStmt(ExprPtr Cond, StmtPtr BodyStmt, SourceLoc Loc);
  static StmtPtr doWhileStmt(StmtPtr BodyStmt, ExprPtr Cond, SourceLoc Loc);
  static StmtPtr forStmt(StmtPtr Init, ExprPtr Cond, StmtPtr Step,
                         StmtPtr BodyStmt, SourceLoc Loc);
  static StmtPtr breakStmt(SourceLoc Loc);
  static StmtPtr returnStmt(ExprPtr Value, SourceLoc Loc);
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct ParamDecl {
  Type Ty;
  std::string Name;
  SourceLoc Loc;
};

struct FunctionDecl {
  Type ReturnType;
  std::string Name;
  std::vector<ParamDecl> Params;
  StmtPtr Body;
  SourceLoc Loc;
};

struct GlobalDecl {
  Type Ty;
  std::string Name;
  bool IsArray = false;
  ExprPtr ArraySize;             ///< Must fold to a constant.
  std::vector<ExprPtr> Init;     ///< Scalar: one element; array: any prefix.
  SourceLoc Loc;
};

struct ExternDecl {
  Type ReturnType;
  std::string Name;
  std::vector<Type> ParamTypes;
  SourceLoc Loc;
};

/// A parsed translation unit.
struct TranslationUnit {
  std::vector<GlobalDecl> Globals;
  std::vector<ExternDecl> Externs;
  std::vector<FunctionDecl> Functions;
};

} // namespace ast
} // namespace frontend
} // namespace qcc

#endif // QCC_FRONTEND_AST_H
