//===- frontend/Elaborator.h - AST to Clight core ---------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Elaboration from the parsed C-subset AST to Clight core — the analogue
/// of CompCert's SimplExpr/SimplLocals passes from CompCert C to Clight:
///
///   * type checking and signedness resolution (DivS vs DivU, ...),
///   * hoisting of calls out of expressions into temporaries, preserving
///     evaluation order and short-circuit conditionality,
///   * desugaring of while/for/do-while into `loop` + `break`,
///   * desugaring of compound assignment and ++/--,
///   * constant folding of global sizes and initializers.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_FRONTEND_ELABORATOR_H
#define QCC_FRONTEND_ELABORATOR_H

#include "clight/Clight.h"
#include "frontend/Ast.h"
#include "support/Diagnostics.h"

#include <map>
#include <optional>
#include <string>

namespace qcc {
namespace frontend {

/// Elaborates one translation unit into a Clight core program.
class Elaborator {
public:
  Elaborator(DiagnosticEngine &Diags) : Diags(Diags) {}

  /// Returns the elaborated program; on errors a partial program is
  /// returned and the diagnostics engine carries the details.
  clight::Program run(const ast::TranslationUnit &TU);

private:
  struct Signature {
    bool IsExternal = false;
    unsigned Arity = 0;
    ast::Type ReturnType = ast::Type::Void;
  };

  // Constant expressions (global sizes and initializers).
  std::optional<uint32_t> evalConst(const ast::Expr &E);

  // Per-function state.
  void elabFunction(const ast::FunctionDecl &F, clight::Program &P);
  std::string freshTemp();
  void declareLocal(const std::string &Name, ast::Type Ty, SourceLoc Loc);

  // Expression elaboration. Calls found inside \p E are appended to
  // \p Hoisted as Clight call statements targeting fresh temporaries.
  struct Elaborated {
    clight::ExprPtr E;
    ast::Type Ty;
  };
  Elaborated elabExpr(const ast::Expr &E, std::vector<clight::StmtPtr> &Hoisted);
  Elaborated elabShortCircuit(const ast::Expr &E,
                              std::vector<clight::StmtPtr> &Hoisted);
  clight::StmtPtr elabCallInto(const ast::Expr &Call,
                               std::optional<clight::LValue> Dest,
                               std::vector<clight::StmtPtr> &Hoisted);

  // Statement elaboration.
  clight::StmtPtr elabStmt(const ast::Stmt &S);
  clight::StmtPtr elabAssign(const ast::Stmt &S);
  clight::StmtPtr elabLoopish(const ast::Stmt &S);
  clight::LValue elabLValue(const ast::Expr &E,
                            std::vector<clight::StmtPtr> &Hoisted,
                            ast::Type &TyOut);

  /// Wraps hoisted statements and a final statement into a Seq chain.
  static clight::StmtPtr sequence(std::vector<clight::StmtPtr> Stmts,
                                  clight::StmtPtr Last);

  DiagnosticEngine &Diags;
  const clight::Program *CurrentProgram = nullptr;

  std::map<std::string, Signature> Signatures;
  std::map<std::string, ast::Type> GlobalTypes;   ///< Scalars only.
  std::map<std::string, ast::Type> ArrayElemTypes;
  std::map<std::string, ast::Type> LocalTypes;    ///< Per function.
  clight::Function *CurrentFunction = nullptr;
  ast::Type CurrentReturnType = ast::Type::Void;
  unsigned TempCounter = 0;
};

} // namespace frontend
} // namespace qcc

#endif // QCC_FRONTEND_ELABORATOR_H
