//===- events/Trace.h - Event traces and program behaviors ------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Finite event traces and program behaviors (Paper section 3.1):
///
///   B ::= conv(t, n) | div(T) | fail(t)
///
/// The paper's coinductive traces T of diverging computations are observed
/// here through fuel-bounded execution, so a diverging behavior carries the
/// finite prefix produced before fuel ran out. All weight and refinement
/// machinery only ever inspects finite prefixes, matching the paper's
/// definition W_M(B) = sup { V_M(t) | t in prefs(B) }.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_EVENTS_TRACE_H
#define QCC_EVENTS_TRACE_H

#include "events/Event.h"
#include "support/Supervision.h"

#include <cstdint>
#include <string>
#include <vector>

namespace qcc {

/// A finite sequence of events.
using Trace = std::vector<Event>;

/// Renders a trace as "call(f).ret(f)" style dot-separated events.
std::string traceToString(const Trace &T);

/// Removes all memory events (call/ret) from \p T, keeping I/O events.
/// This is the pruning operation B-bar used by classic CompCert refinement.
Trace pruneMemoryEvents(const Trace &T);

/// Returns true if the memory events of \p T are properly bracketed:
/// every ret(f) closes the most recent open call(f), and the nesting depth
/// never goes negative. Traces of executions stopped mid-run may leave
/// calls open; that is still well-bracketed.
bool isWellBracketed(const Trace &T);

/// How an observed execution ended.
enum class BehaviorKind : uint8_t {
  Converges, ///< conv(t, n): terminated normally with return code n.
  Diverges,  ///< div(T): ran out of fuel; trace is the produced prefix.
  Fails      ///< fail(t): went wrong (undefined behavior, trap, overflow).
};

/// A program behavior: an outcome, its (prefix) trace, and for converging
/// runs the return code. For failing runs \c FailureReason says why.
///
/// \c Stop distinguishes *why* an observation was truncated: a Diverges
/// behavior with Stop == FuelExhausted ran out of step budget; one with
/// Stop == DeadlineExpired / MemoryBudget / Cancelled was stopped by its
/// supervisor before producing a verdict. The kind stays Diverges in all
/// of these cases (the trace is a genuine finite prefix either way), so
/// the refinement machinery is unaffected; consumers that must not
/// conflate "no verdict" with "program fault" read Stop.
struct Behavior {
  BehaviorKind Kind;
  Trace Events;
  int32_t ReturnCode = 0;
  std::string FailureReason;
  StopCause Stop = StopCause::None;

  static Behavior converges(Trace T, int32_t Code) {
    return Behavior{BehaviorKind::Converges, std::move(T), Code, ""};
  }
  static Behavior diverges(Trace T) {
    return Behavior{BehaviorKind::Diverges, std::move(T), 0, ""};
  }
  static Behavior fails(Trace T, std::string Reason) {
    return Behavior{BehaviorKind::Fails, std::move(T), 0, std::move(Reason)};
  }

  bool converged() const { return Kind == BehaviorKind::Converges; }
  bool failed() const { return Kind == BehaviorKind::Fails; }

  /// Renders as e.g. "conv(call(main).ret(main), 0)".
  std::string str() const;
};

} // namespace qcc

#endif // QCC_EVENTS_TRACE_H
