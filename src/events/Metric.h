//===- events/Metric.h - Stack resource metrics -----------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource metrics M : E -> Z (Paper section 3.1). A *stack metric*
/// satisfies, for all internal functions f and external functions g,
///
///   0 <= M(call(f)) = -M(ret(f))     and     M(g(vs |-> v)) = 0.
///
/// So a stack metric is determined by a map from function names to
/// non-negative per-call costs (the stack-frame size plus the return
/// address). Quantitative CompCert produces such a metric from the Mach
/// frame layout: M(f) = SF(f) + 4.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_EVENTS_METRIC_H
#define QCC_EVENTS_METRIC_H

#include "events/Event.h"

#include <cstdint>
#include <map>
#include <string>

namespace qcc {

/// A stack metric: per-function call costs in bytes. Functions absent from
/// the map cost \c DefaultCost (0 unless configured otherwise), which also
/// covers external functions per the paper's convention.
class StackMetric {
public:
  StackMetric() = default;
  explicit StackMetric(std::map<std::string, uint32_t> Costs)
      : Costs(std::move(Costs)) {}

  /// Sets the cost of one function.
  void setCost(const std::string &Function, uint32_t Bytes) {
    Costs[Function] = Bytes;
  }

  /// Per-call cost of \p Function in bytes.
  uint32_t cost(const std::string &Function) const {
    auto It = Costs.find(Function);
    return It == Costs.end() ? DefaultCost : It->second;
  }

  bool hasCost(const std::string &Function) const {
    return Costs.count(Function) != 0;
  }

  /// The signed value M(e) of one event: +cost for call, -cost for ret,
  /// 0 for external events.
  int64_t value(const Event &E) const {
    switch (E.Kind) {
    case EventKind::Call:
      return static_cast<int64_t>(cost(E.function()));
    case EventKind::Return:
      return -static_cast<int64_t>(cost(E.function()));
    case EventKind::External:
      return 0;
    }
    return 0;
  }

  const std::map<std::string, uint32_t> &costs() const { return Costs; }

  /// Renders as "{f: 40, g: 24}".
  std::string str() const;

private:
  std::map<std::string, uint32_t> Costs;
  uint32_t DefaultCost = 0;
};

} // namespace qcc

#endif // QCC_EVENTS_METRIC_H
