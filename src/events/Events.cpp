//===- events/Events.cpp - Traces, metrics, weights, refinement -----------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "events/Event.h"
#include "events/Metric.h"
#include "events/Refinement.h"
#include "events/Trace.h"
#include "events/Weight.h"

#include <algorithm>
#include <cassert>

using namespace qcc;

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string Event::str() const {
  switch (Kind) {
  case EventKind::Call:
    return "call(" + function() + ")";
  case EventKind::Return:
    return "ret(" + function() + ")";
  case EventKind::External: {
    std::string Out = function() + "(";
    const std::vector<int32_t> &As = args();
    for (size_t I = 0; I != As.size(); ++I) {
      if (I)
        Out += ",";
      Out += std::to_string(As[I]);
    }
    Out += " -> " + std::to_string(Result) + ")";
    return Out;
  }
  }
  return "<bad event>";
}

std::string qcc::traceToString(const Trace &T) {
  if (T.empty())
    return "eps";
  std::string Out;
  for (size_t I = 0; I != T.size(); ++I) {
    if (I)
      Out += ".";
    Out += T[I].str();
  }
  return Out;
}

std::string Behavior::str() const {
  switch (Kind) {
  case BehaviorKind::Converges:
    return "conv(" + traceToString(Events) + ", " +
           std::to_string(ReturnCode) + ")";
  case BehaviorKind::Diverges:
    return "div(" + traceToString(Events) + "...)";
  case BehaviorKind::Fails:
    return "fail(" + traceToString(Events) + "; " + FailureReason + ")";
  }
  return "<bad behavior>";
}

std::string StackMetric::str() const {
  std::string Out = "{";
  bool First = true;
  for (const auto &[F, C] : Costs) {
    if (!First)
      Out += ", ";
    First = false;
    Out += F + ": " + std::to_string(C);
  }
  Out += "}";
  return Out;
}

//===----------------------------------------------------------------------===//
// Trace structure
//===----------------------------------------------------------------------===//

Trace qcc::pruneMemoryEvents(const Trace &T) {
  Trace Out;
  for (const Event &E : T)
    if (!E.isMemoryEvent())
      Out.push_back(E);
  return Out;
}

bool qcc::isWellBracketed(const Trace &T) {
  std::vector<SymId> Open;
  for (const Event &E : T) {
    switch (E.Kind) {
    case EventKind::Call:
      Open.push_back(E.Fn);
      break;
    case EventKind::Return:
      if (Open.empty() || Open.back() != E.Fn)
        return false;
      Open.pop_back();
      break;
    case EventKind::External:
      break;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Valuation and weight
//===----------------------------------------------------------------------===//

int64_t qcc::valuation(const StackMetric &M, const Trace &T) {
  int64_t Sum = 0;
  for (const Event &E : T)
    Sum += M.value(E);
  return Sum;
}

uint64_t qcc::weight(const StackMetric &M, const Trace &T) {
  int64_t Sum = 0;
  int64_t Max = 0; // The empty prefix has valuation 0.
  for (const Event &E : T) {
    Sum += M.value(E);
    Max = std::max(Max, Sum);
  }
  assert(Max >= 0 && "prefix maximum below the empty prefix");
  return static_cast<uint64_t>(Max);
}

uint64_t qcc::weight(const StackMetric &M, const Behavior &B) {
  return weight(M, B.Events);
}

std::vector<CallDepthVector> qcc::callDepthProfile(const Trace &T) {
  std::vector<CallDepthVector> Profile;
  CallDepthVector Current;
  Profile.push_back(Current); // Empty prefix.
  for (const Event &E : T) {
    switch (E.Kind) {
    case EventKind::Call:
      ++Current[E.function()];
      Profile.push_back(Current);
      break;
    case EventKind::Return:
      if (--Current[E.function()] == 0)
        Current.erase(E.function());
      Profile.push_back(Current);
      break;
    case EventKind::External:
      break; // Counts unchanged; no new profile point needed.
    }
  }
  return Profile;
}

/// Returns true if A(f) <= B(f) for every f, treating absent entries as 0.
static bool depthVectorLE(const CallDepthVector &A, const CallDepthVector &B) {
  for (const auto &[F, C] : A) {
    if (C <= 0)
      continue;
    auto It = B.find(F);
    if (It == B.end() || It->second < C)
      return false;
  }
  return true;
}

bool qcc::pointwiseDominated(const std::vector<CallDepthVector> &Profile,
                             const std::vector<CallDepthVector> &Dominating) {
  for (const CallDepthVector &C : Profile) {
    bool Found = false;
    for (const CallDepthVector &D : Dominating) {
      if (depthVectorLE(C, D)) {
        Found = true;
        break;
      }
    }
    if (!Found)
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Refinement
//===----------------------------------------------------------------------===//

RefinementResult qcc::checkClassicRefinement(const Behavior &Target,
                                             const Behavior &Source) {
  if (Target.Kind != Source.Kind)
    return RefinementResult::fail("behavior kinds differ: target " +
                                  Target.str() + " vs source " + Source.str());
  if (Target.converged() && Target.ReturnCode != Source.ReturnCode)
    return RefinementResult::fail(
        "return codes differ: target " + std::to_string(Target.ReturnCode) +
        " vs source " + std::to_string(Source.ReturnCode));
  Trace PT = pruneMemoryEvents(Target.Events);
  Trace PS = pruneMemoryEvents(Source.Events);
  if (PT != PS)
    return RefinementResult::fail("pruned traces differ: target " +
                                  traceToString(PT) + " vs source " +
                                  traceToString(PS));
  return RefinementResult::ok();
}

/// Extracts just the memory events of a trace.
static Trace memoryEvents(const Trace &T) {
  Trace Out;
  for (const Event &E : T)
    if (E.isMemoryEvent())
      Out.push_back(E);
  return Out;
}

RefinementResult qcc::checkQuantitativeRefinement(const Behavior &Target,
                                                  const Behavior &Source) {
  RefinementResult Classic = checkClassicRefinement(Target, Source);
  if (!Classic.Ok)
    return Classic;

  // Certificate 1: the pass preserved memory events exactly.
  if (memoryEvents(Target.Events) == memoryEvents(Source.Events))
    return RefinementResult::ok();

  // Certificate 2: pointwise domination of open-call-count profiles, which
  // implies W_M(target) <= W_M(source) for every non-negative metric M.
  if (pointwiseDominated(callDepthProfile(Target.Events),
                         callDepthProfile(Source.Events)))
    return RefinementResult::ok();

  return RefinementResult::fail(
      "no all-metrics weight certificate: memory events differ and the "
      "target call-depth profile is not pointwise dominated");
}

RefinementResult qcc::falsifyWeightDominance(const Behavior &Target,
                                             const Behavior &Source,
                                             unsigned Samples, uint64_t Seed) {
  // Collect the function alphabet from both traces.
  std::vector<std::string> Functions;
  auto Collect = [&Functions](const Trace &T) {
    for (const Event &E : T) {
      if (!E.isMemoryEvent())
        continue;
      if (std::find(Functions.begin(), Functions.end(), E.function()) ==
          Functions.end())
        Functions.push_back(E.function());
    }
  };
  Collect(Target.Events);
  Collect(Source.Events);

  auto Check = [&](const StackMetric &M) -> RefinementResult {
    uint64_t WT = weight(M, Target.Events);
    uint64_t WS = weight(M, Source.Events);
    if (WT > WS)
      return RefinementResult::fail(
          "W_M(target)=" + std::to_string(WT) + " > W_M(source)=" +
          std::to_string(WS) + " under metric " + M.str());
    return RefinementResult::ok();
  };

  // The uniform metric and every one-hot metric.
  StackMetric Uniform;
  for (const std::string &F : Functions)
    Uniform.setCost(F, 1);
  if (RefinementResult R = Check(Uniform); !R.Ok)
    return R;
  for (const std::string &F : Functions) {
    StackMetric OneHot;
    OneHot.setCost(F, 1);
    if (RefinementResult R = Check(OneHot); !R.Ok)
      return R;
  }

  // Randomized metrics (deterministic splitmix64 stream).
  uint64_t State = Seed;
  auto Next = [&State]() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  };
  for (unsigned I = 0; I != Samples; ++I) {
    StackMetric M;
    for (const std::string &F : Functions)
      M.setCost(F, static_cast<uint32_t>(Next() % 1024));
    if (RefinementResult R = Check(M); !R.Ok)
      return R;
  }
  return RefinementResult::ok();
}
