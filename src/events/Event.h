//===- events/Event.h - Call/return and I/O events --------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Events as defined in Paper section 3.1. CompCert's observable events are
/// external-function (I/O) events; the paper adds *memory events* call(f)
/// and ret(f) for internal function calls so that stack usage becomes a
/// function of the trace. Memory events need not be preserved exactly by
/// compilation; only the trace weight must not increase.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_EVENTS_EVENT_H
#define QCC_EVENTS_EVENT_H

#include <cstdint>
#include <string>
#include <vector>

namespace qcc {

/// Discriminates the three event forms of the extended trace grammar:
///   mu ::= call(f) | ret(f)        (memory events)
///   nu ::= f(vs |-> v)             (I/O / external-call events)
enum class EventKind : uint8_t { Call, Return, External };

/// One trace event.
///
/// For Call/Return events only \c Function is meaningful. External events
/// carry the argument and result values of the external call, mirroring
/// CompCert's I/O events.
struct Event {
  EventKind Kind;
  std::string Function;
  std::vector<int32_t> Args;   ///< External events only.
  int32_t Result = 0;          ///< External events only.

  static Event call(std::string F) {
    return Event{EventKind::Call, std::move(F), {}, 0};
  }
  static Event ret(std::string F) {
    return Event{EventKind::Return, std::move(F), {}, 0};
  }
  static Event external(std::string F, std::vector<int32_t> Args,
                        int32_t Result) {
    return Event{EventKind::External, std::move(F), std::move(Args), Result};
  }

  bool isMemoryEvent() const { return Kind != EventKind::External; }

  bool operator==(const Event &O) const {
    return Kind == O.Kind && Function == O.Function && Args == O.Args &&
           (Kind != EventKind::External || Result == O.Result);
  }
  bool operator!=(const Event &O) const { return !(*this == O); }

  /// Renders as "call(f)", "ret(f)" or "f(1,2 -> 3)".
  std::string str() const;
};

} // namespace qcc

#endif // QCC_EVENTS_EVENT_H
