//===- events/Event.h - Call/return and I/O events --------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Events as defined in Paper section 3.1. CompCert's observable events are
/// external-function (I/O) events; the paper adds *memory events* call(f)
/// and ret(f) for internal function calls so that stack usage becomes a
/// function of the trace. Memory events need not be preserved exactly by
/// compilation; only the trace weight must not increase.
///
/// An event is a 12-byte POD: the function name and the external-call
/// argument tuple live in the process-wide SymbolTable and the event
/// carries their canonical ids. Equality is id equality, and emitting an
/// event allocates nothing, which is what the streaming validation path
/// (TraceSink.h) relies on. String-based factories remain for tests and
/// diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_EVENTS_EVENT_H
#define QCC_EVENTS_EVENT_H

#include "events/SymbolTable.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qcc {

/// Discriminates the three event forms of the extended trace grammar:
///   mu ::= call(f) | ret(f)        (memory events)
///   nu ::= f(vs |-> v)             (I/O / external-call events)
enum class EventKind : uint8_t { Call, Return, External };

/// One trace event.
///
/// For Call/Return events only \c Fn is meaningful. External events
/// additionally carry the interned argument tuple and the result value of
/// the external call, mirroring CompCert's I/O events.
struct Event {
  EventKind Kind = EventKind::Call;
  SymId Fn = 0;        ///< Interned function name.
  ArgsId Args = 0;     ///< External events only; interned argument tuple.
  int32_t Result = 0;  ///< External events only.

  // Id-based factories: the allocation-free path the interpreters use.
  static Event call(SymId F) { return Event{EventKind::Call, F, 0, 0}; }
  static Event ret(SymId F) { return Event{EventKind::Return, F, 0, 0}; }
  static Event external(SymId F, ArgsId Args, int32_t Result) {
    return Event{EventKind::External, F, Args, Result};
  }

  // String-based factories: intern on the way in (tests, diagnostics).
  static Event call(std::string_view F) {
    return call(SymbolTable::global().intern(F));
  }
  static Event ret(std::string_view F) {
    return ret(SymbolTable::global().intern(F));
  }
  static Event external(std::string_view F, const std::vector<int32_t> &Args,
                        int32_t Result) {
    SymbolTable &T = SymbolTable::global();
    return external(T.intern(F), T.internArgs(Args), Result);
  }
  // Disambiguate string literals (otherwise convertible to both
  // std::string_view and, via int, nothing sensible).
  static Event call(const char *F) { return call(std::string_view(F)); }
  static Event ret(const char *F) { return ret(std::string_view(F)); }

  bool isMemoryEvent() const { return Kind != EventKind::External; }

  /// The interned function name rendered back to a string.
  const std::string &function() const {
    return SymbolTable::global().name(Fn);
  }

  /// The interned argument tuple (empty for memory events).
  const std::vector<int32_t> &args() const {
    return SymbolTable::global().args(Args);
  }

  /// Kind-dependent equality: memory events compare kind and function
  /// only; the argument/result payload is meaningful (and compared) for
  /// External events alone. Interned ids are canonical, so this never
  /// touches the symbol table.
  bool operator==(const Event &O) const {
    if (Kind != O.Kind || Fn != O.Fn)
      return false;
    return Kind != EventKind::External ||
           (Args == O.Args && Result == O.Result);
  }
  bool operator!=(const Event &O) const { return !(*this == O); }

  /// Renders as "call(f)", "ret(f)" or "f(1,2 -> 3)".
  std::string str() const;
};

} // namespace qcc

#endif // QCC_EVENTS_EVENT_H
