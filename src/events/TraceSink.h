//===- events/TraceSink.h - Streaming trace consumers -----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming event pipeline. Every interpreter in the five-level
/// pipeline emits its events into a TraceSink instead of materializing a
/// vector; composable sinks fold the stream into exactly the state each
/// consumer needs:
///
///   * RecordingSink      — today's behavior: keep the full trace.
///   * WeightAccumulator  — online V_M / W_M in O(1) state. The paper's
///                          W_M(B) = sup { V_M(t) | t in prefs(B) } is a
///                          running max because V_M only rises on call
///                          events, so the sup over prefixes is reached
///                          at call events (DESIGN.md "Streaming trace
///                          refinement").
///   * ProfileAccumulator — the open-call-count profile *peaks*: the
///                          O(depth) summary that preserves both the
///                          pointwise-domination certificate and exact
///                          weights under every non-negative metric.
///   * PruningHasher      — 128-bit digests of the pruned (I/O) event
///                          sequence (classic refinement) and of the
///                          memory-event sequence (certificate 1).
///   * RefinementAccumulator — the composition of the last two, folding
///                          one run into a RefinementSummary that the
///                          streaming checkQuantitativeRefinement
///                          consumes.
///
/// An execution's end is described by an Outcome (behavior kind, return
/// code, failure reason) — a Behavior without the trace. The recording
/// wrappers pair an Outcome with a RecordingSink's trace to recover the
/// classic Behavior API.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_EVENTS_TRACESINK_H
#define QCC_EVENTS_TRACESINK_H

#include "events/Event.h"
#include "events/Metric.h"
#include "events/Trace.h"
#include "support/Hash.h"
#include "support/Supervision.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qcc {

/// Consumer of one interpreter run's event stream.
class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual void onEvent(const Event &E) = 0;
};

/// How an execution ended: a Behavior minus the materialized trace. The
/// streaming interpreter entry points return this.
///
/// \c Stop carries the budget taxonomy: FuelExhausted for runs that spent
/// their step budget (kind Diverges, as before — the trace really is a
/// finite prefix of a longer run), and DeadlineExpired / MemoryBudget /
/// Cancelled for runs a Supervisor stopped. A stopped run holds no
/// verdict: it neither converged, nor faulted, nor is its prefix a
/// trustworthy divergence observation at any particular cut — consumers
/// must treat it as "budget ran out", never as a program fault or a
/// verification result.
struct Outcome {
  BehaviorKind Kind = BehaviorKind::Fails;
  int32_t ReturnCode = 0;
  std::string FailureReason;
  StopCause Stop = StopCause::None;

  static Outcome converges(int32_t Code) {
    return {BehaviorKind::Converges, Code, ""};
  }
  static Outcome diverges() { return {BehaviorKind::Diverges, 0, ""}; }
  static Outcome fails(std::string Reason) {
    return {BehaviorKind::Fails, 0, std::move(Reason)};
  }
  /// The step budget ran out: distinct from a fault (the program did
  /// nothing wrong) and from a supervisor stop (the run was complete up
  /// to its fuel, deterministically).
  static Outcome exhausted() {
    return {BehaviorKind::Diverges, 0, "", StopCause::FuelExhausted};
  }
  /// A Supervisor requested a stop: the run was abandoned mid-flight.
  static Outcome stopped(StopCause C) {
    return {BehaviorKind::Diverges, 0,
            std::string("stopped: ") + stopCauseName(C), C};
  }

  bool converged() const { return Kind == BehaviorKind::Converges; }
  /// True when the run ended for budget reasons (fuel, deadline, memory,
  /// cancel) rather than by converging or faulting.
  bool budgetStopped() const { return Stop != StopCause::None; }
  /// True when a Supervisor (not deterministic fuel) stopped the run.
  bool supervisorStopped() const {
    return Stop != StopCause::None && Stop != StopCause::FuelExhausted;
  }

  /// Pairs this outcome with a materialized trace.
  Behavior intoBehavior(Trace T) const;
};

/// Preserves the materialized-trace behavior: records every event.
/// The one sink whose state is O(trace): when a Supervisor with a memory
/// budget is attached as \c Meter, every recorded event is charged
/// against it, so a runaway trace requests a cooperative stop instead of
/// exhausting RSS.
class RecordingSink final : public TraceSink {
public:
  Trace Events;
  Supervisor *Meter = nullptr; ///< Optional allocation-counting hook.
  RecordingSink() = default;
  explicit RecordingSink(Supervisor *Meter) : Meter(Meter) {}
  void onEvent(const Event &E) override {
    if (Meter)
      Meter->charge(sizeof(Event));
    Events.push_back(E);
  }
  /// Recovers the classic Behavior from an outcome plus the recording.
  Behavior finish(const Outcome &O) { return O.intoBehavior(std::move(Events)); }
};

/// Discards the stream (pure-speed baselines in benches).
class NullSink final : public TraceSink {
public:
  void onEvent(const Event &) override {}
};

/// Fans one stream out to several sinks.
class TeeSink final : public TraceSink {
public:
  TeeSink(TraceSink &A, TraceSink &B) : Sinks{&A, &B} {}
  explicit TeeSink(std::vector<TraceSink *> Sinks) : Sinks(std::move(Sinks)) {}
  void onEvent(const Event &E) override {
    for (TraceSink *S : Sinks)
      S->onEvent(E);
  }

private:
  std::vector<TraceSink *> Sinks;
};

/// Online valuation and weight under one fixed metric: V_M as a running
/// sum, W_M as its running max (the sup over prefixes is attained after
/// call events since only they raise V_M). Per-function costs are
/// resolved once per interned id.
class WeightAccumulator final : public TraceSink {
public:
  explicit WeightAccumulator(const StackMetric &M) : M(M) {}

  void onEvent(const Event &E) override {
    switch (E.Kind) {
    case EventKind::Call:
      Sum += costOf(E.Fn);
      if (Sum > Max)
        Max = Sum;
      break;
    case EventKind::Return:
      Sum -= costOf(E.Fn);
      break;
    case EventKind::External:
      break;
    }
  }

  /// V_M of the consumed stream.
  int64_t valuation() const { return Sum; }
  /// W_M of the consumed stream (max prefix valuation, never negative).
  uint64_t weight() const { return static_cast<uint64_t>(Max); }

private:
  int64_t costOf(SymId F);

  const StackMetric &M;
  std::vector<int64_t> Cost;  ///< Dense per-SymId cost cache.
  std::vector<uint8_t> Known;
  int64_t Sum = 0;
  int64_t Max = 0; // The empty prefix has valuation 0.
};

/// Open-call counts keyed by interned function id; the SymId analogue of
/// CallDepthVector. Zero entries are erased (canonical form); negative
/// entries can occur for ill-bracketed synthetic traces.
using SymDepthVector = std::map<SymId, int64_t>;

/// Folds the memory-event stream into the *peaks* of the open-call-count
/// profile: the count vectors at each call event that is immediately
/// followed (memory-event-wise) by a return or by the end of the trace,
/// plus the empty vector for the empty prefix. Since counts only rise at
/// call events and only fall at return events, every profile point is
/// entrywise bounded by some peak, so the peak set preserves (a) the
/// pointwise-domination certificate verdict and (b) the exact weight
/// under every non-negative metric — in O(call-depth)-sized state instead
/// of O(trace). Entrywise-dominated peaks are pruned on capture, which is
/// verdict- and weight-preserving even with negative counts.
class ProfileAccumulator final : public TraceSink {
public:
  ProfileAccumulator() : Peaks{SymDepthVector{}} {}

  /// Optional allocation-counting hook: every captured peak is charged
  /// (the peak set is this sink's only unbounded state).
  Supervisor *Meter = nullptr;

  void onEvent(const Event &E) override;

  /// Captures a trailing open peak (a final call with no following
  /// return). Call once after the last event; further events may follow
  /// (the accumulator stays consistent).
  void flush();

  /// The peak set. Only complete after flush().
  const std::vector<SymDepthVector> &peaks() const { return Peaks; }

  /// Functions mentioned by memory events, in first-appearance order —
  /// the alphabet the randomized-metric falsifier samples over.
  const std::vector<SymId> &alphabet() const { return Alphabet; }

  /// The current open-call vector (the live prefix's counts).
  const SymDepthVector &current() const { return Current; }

private:
  void capture();
  void see(SymId F);

  SymDepthVector Current;
  bool PendingPeak = false; ///< Last memory event was a call.
  std::vector<SymDepthVector> Peaks;
  std::vector<SymId> Alphabet;
};

/// Streams the two event subsequences refinement compares into fixed-size
/// digests: the pruned (I/O-only) sequence for classic refinement and the
/// memory-event sequence for the equality certificate. Two independently
/// seeded 64-bit FNV-1a chains per sequence give a 128-bit digest; counts
/// ride along so length differences are detected outright.
class PruningHasher final : public TraceSink {
public:
  PruningHasher();

  void onEvent(const Event &E) override;

  uint64_t ioDigestA() const { return IOA.digest(); }
  uint64_t ioDigestB() const { return IOB.digest(); }
  uint64_t ioCount() const { return NIO; }
  uint64_t memDigestA() const { return MemA.digest(); }
  uint64_t memDigestB() const { return MemB.digest(); }
  uint64_t memCount() const { return NMem; }

private:
  Fnv1a64 IOA, IOB, MemA, MemB;
  uint64_t NIO = 0;
  uint64_t NMem = 0;
};

/// Everything the streaming refinement checker needs to know about one
/// run: O(call-depth + alphabet) state, independent of trace length.
struct RefinementSummary {
  BehaviorKind Kind = BehaviorKind::Fails;
  int32_t ReturnCode = 0;
  std::string FailureReason;
  uint64_t EventCount = 0;

  uint64_t IOHashA = 0, IOHashB = 0;
  uint64_t IOCount = 0;
  uint64_t MemHashA = 0, MemHashB = 0;
  uint64_t MemCount = 0;

  std::vector<SymId> Alphabet;       ///< First-appearance order.
  std::vector<SymDepthVector> Peaks; ///< Pruned profile peaks.
};

/// The one sink the driver threads through each interpreter level:
/// hashes + profile peaks + event count, folded into a RefinementSummary
/// when the run's outcome is known.
class RefinementAccumulator final : public TraceSink {
public:
  RefinementAccumulator() = default;
  /// With \p Meter set, peak captures (the only unbounded state here)
  /// charge the supervisor's soft memory budget.
  explicit RefinementAccumulator(Supervisor *Meter) {
    Profile.Meter = Meter;
  }

  void onEvent(const Event &E) override {
    ++Count;
    Hash.onEvent(E);
    Profile.onEvent(E);
  }

  RefinementSummary finish(const Outcome &O);

private:
  uint64_t Count = 0;
  PruningHasher Hash;
  ProfileAccumulator Profile;
};

/// Replays a materialized behavior through a RefinementAccumulator — the
/// bridge the differential tests use to cross-check streaming summaries
/// against the recording path.
RefinementSummary summarize(const Behavior &B);

} // namespace qcc

#endif // QCC_EVENTS_TRACESINK_H
