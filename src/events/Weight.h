//===- events/Weight.h - Trace valuations and weights -----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Valuation and weight of traces (Paper section 3.1):
///
///   V_M(eps) = 0,   V_M(a.t) = V_M(t) + M(a)
///   W_M(t)   = sup { V_M(t') | t' prefix of t }
///   W_M(B)   = sup { V_M(t) | t in prefs(B) }
///
/// For a stack metric, V_M of a prefix is the number of stack bytes live
/// after that prefix, and W_M is the high-water mark of the execution.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_EVENTS_WEIGHT_H
#define QCC_EVENTS_WEIGHT_H

#include "events/Metric.h"
#include "events/Trace.h"
#include "support/ExtNat.h"

#include <cstdint>
#include <map>
#include <string>

namespace qcc {

/// V_M(t): the sum of event values over the whole trace. For well-bracketed
/// complete executions of a stack metric this is 0; mid-execution prefixes
/// yield the currently live stack bytes.
int64_t valuation(const StackMetric &M, const Trace &T);

/// W_M(t): the maximum prefix valuation (never negative since the empty
/// prefix has valuation 0). This is the stack high-water mark in bytes.
uint64_t weight(const StackMetric &M, const Trace &T);

/// W_M(B): behaviors are weighed through their trace prefix. (Failing
/// behaviors are weighed like any other: the paper's W_M(fail(t)) weighs
/// the produced trace; Theorem 1 separately requires the source not to
/// fail.)
uint64_t weight(const StackMetric &M, const Behavior &B);

/// The per-function open-call counts c_p(f) = #call(f) - #ret(f) of one
/// trace prefix. For well-bracketed traces all counts are non-negative;
/// the weight under M is then max over prefixes p of sum_f c_p(f) * M(f).
using CallDepthVector = std::map<std::string, int64_t>;

/// Returns the sequence of open-call count vectors after each event of
/// \p T that changes some count (i.e. after each memory event), starting
/// from the empty vector. Used by the all-metrics refinement check.
std::vector<CallDepthVector> callDepthProfile(const Trace &T);

/// True if for every vector c' in \p Profile there is a vector c in
/// \p Dominating with c'(f) <= c(f) for every function f. This pointwise
/// domination implies W_M(t') <= W_M(t) for *all* stack metrics M.
bool pointwiseDominated(const std::vector<CallDepthVector> &Profile,
                        const std::vector<CallDepthVector> &Dominating);

} // namespace qcc

#endif // QCC_EVENTS_WEIGHT_H
