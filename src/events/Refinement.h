//===- events/Refinement.h - Quantitative refinement checking ---*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic and quantitative refinement between observed behaviors (Paper
/// section 3.1). A target behavior B' quantitatively refines a source
/// behavior B when
///
///   pruned(B') == pruned(B)   and   W_M(B') <= W_M(B) for all stack
///   metrics M.
///
/// The paper proves this in Coq once and for all; here each compiler pass
/// is *translation validated*: the checker replays both semantics and
/// certifies the pair of traces. The all-metrics condition is established
/// by one of two certificates:
///
///   1. memory-event equality (the pass preserved call/ret events exactly,
///      which is what our Clight -> Mach passes do, like the paper's); or
///   2. pointwise domination of open-call-count profiles, which implies
///      weight domination for every non-negative metric.
///
/// A randomized-metric falsification pass backs the certificates up in
/// tests.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_EVENTS_REFINEMENT_H
#define QCC_EVENTS_REFINEMENT_H

#include "events/Trace.h"
#include "events/TraceSink.h"
#include "events/Weight.h"

#include <cstdint>
#include <string>
#include <vector>

namespace qcc {

/// Result of a refinement check: success, or an explanation of the
/// violation for diagnostics.
struct RefinementResult {
  bool Ok;
  std::string Reason;

  static RefinementResult ok() { return {true, ""}; }
  static RefinementResult fail(std::string Reason) {
    return {false, std::move(Reason)};
  }
};

/// Classic CompCert refinement on one behavior pair: pruned traces must
/// match, outcome kinds must match, and return codes must agree on
/// converging runs. (A failing source behavior discharges any target
/// behavior, per the definition; callers encode that case by not invoking
/// the checker.)
RefinementResult checkClassicRefinement(const Behavior &Target,
                                        const Behavior &Source);

/// Quantitative refinement: classic refinement plus the all-metrics weight
/// condition established via memory-event equality or pointwise profile
/// domination.
RefinementResult checkQuantitativeRefinement(const Behavior &Target,
                                             const Behavior &Source);

/// Testing aid: samples \p Samples randomized stack metrics over the
/// functions mentioned in either trace (plus the uniform metric and each
/// one-hot metric) and reports the first metric under which
/// W_M(Target) > W_M(Source). Deterministic for a fixed \p Seed.
RefinementResult falsifyWeightDominance(const Behavior &Target,
                                        const Behavior &Source,
                                        unsigned Samples = 64,
                                        uint64_t Seed = 0x9e3779b97f4a7c15ull);

//===----------------------------------------------------------------------===//
// Streaming entry points
//===----------------------------------------------------------------------===//
//
// The same checks, consuming two RefinementSummary values (produced by a
// RefinementAccumulator threaded through the interpreters) instead of two
// materialized Behaviors. Verdicts agree with the trace-based checks on
// every pair of runs: pruned-trace and memory-event equality become
// 128-bit digest comparisons, and profile domination / weights are
// computed from the profile peaks, which preserve both exactly (see
// DESIGN.md "Streaming trace refinement" for the argument).

/// Classic refinement on summaries: kinds, return codes, and the pruned
/// (I/O) digests must match.
RefinementResult checkClassicRefinement(const RefinementSummary &Target,
                                        const RefinementSummary &Source);

/// Quantitative refinement on summaries: classic refinement plus the
/// all-metrics certificate via memory-event digest equality or pointwise
/// domination of the profile peaks.
RefinementResult checkQuantitativeRefinement(const RefinementSummary &Target,
                                             const RefinementSummary &Source);

/// The SymId-keyed analogue of the CallDepthVector domination check,
/// applied to peak sets.
bool pointwiseDominated(const std::vector<SymDepthVector> &Profile,
                        const std::vector<SymDepthVector> &Dominating);

/// W_M recovered from a summary's peaks — exact for every non-negative
/// metric, identical to weight(M, Behavior) on the same run.
uint64_t weight(const StackMetric &M, const RefinementSummary &S);

/// The randomized-metric falsifier on summaries. Samples the identical
/// deterministic metric stream as the trace-based overload (alphabet in
/// target-then-source first-appearance order), so verdicts are
/// bit-identical.
RefinementResult falsifyWeightDominance(const RefinementSummary &Target,
                                        const RefinementSummary &Source,
                                        unsigned Samples = 64,
                                        uint64_t Seed = 0x9e3779b97f4a7c15ull);

} // namespace qcc

#endif // QCC_EVENTS_REFINEMENT_H
