//===- events/SymbolTable.cpp - Interned event symbols --------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "events/SymbolTable.h"

#include <cassert>
#include <mutex>

using namespace qcc;

SymbolTable &SymbolTable::global() {
  static SymbolTable Table;
  return Table;
}

SymbolTable::SymbolTable() {
  // Reserve id 0 for the empty name / empty tuple so default-constructed
  // events render sensibly.
  Names.emplace_back();
  NameIds.emplace(std::string_view(Names.back()), 0);
  ArgTuples.emplace_back();
  ArgIds.emplace(std::vector<int32_t>(), 0);
}

SymId SymbolTable::intern(std::string_view Name) {
  {
    std::shared_lock<std::shared_mutex> Lock(Mu);
    auto It = NameIds.find(Name);
    if (It != NameIds.end())
      return It->second;
  }
  std::unique_lock<std::shared_mutex> Lock(Mu);
  auto It = NameIds.find(Name);
  if (It != NameIds.end())
    return It->second;
  SymId Id = static_cast<SymId>(Names.size());
  Names.emplace_back(Name);
  NameIds.emplace(std::string_view(Names.back()), Id);
  return Id;
}

const std::string &SymbolTable::name(SymId Id) const {
  std::shared_lock<std::shared_mutex> Lock(Mu);
  assert(Id < Names.size() && "unknown symbol id");
  return Names[Id];
}

ArgsId SymbolTable::internArgs(const std::vector<int32_t> &Args) {
  if (Args.empty())
    return 0;
  {
    std::shared_lock<std::shared_mutex> Lock(Mu);
    auto It = ArgIds.find(Args);
    if (It != ArgIds.end())
      return It->second;
  }
  std::unique_lock<std::shared_mutex> Lock(Mu);
  auto It = ArgIds.find(Args);
  if (It != ArgIds.end())
    return It->second;
  ArgsId Id = static_cast<ArgsId>(ArgTuples.size());
  ArgTuples.push_back(Args);
  ArgIds.emplace(Args, Id);
  return Id;
}

const std::vector<int32_t> &SymbolTable::args(ArgsId Id) const {
  std::shared_lock<std::shared_mutex> Lock(Mu);
  assert(Id < ArgTuples.size() && "unknown args id");
  return ArgTuples[Id];
}

size_t SymbolTable::size() const {
  std::shared_lock<std::shared_mutex> Lock(Mu);
  return Names.size();
}
