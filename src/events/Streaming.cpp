//===- events/Streaming.cpp - Streaming sinks and refinement --------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the streaming trace pipeline: the accumulator sinks
/// of TraceSink.h and the summary-based refinement checks. The
/// equivalence argument connecting peaks to the materialized definitions
/// is laid out in DESIGN.md ("Streaming trace refinement").
///
//===----------------------------------------------------------------------===//

#include "events/Refinement.h"
#include "events/TraceSink.h"

#include <algorithm>

using namespace qcc;

//===----------------------------------------------------------------------===//
// Outcome / recording bridge
//===----------------------------------------------------------------------===//

Behavior Outcome::intoBehavior(Trace T) const {
  Behavior B = [&]() -> Behavior {
    switch (Kind) {
    case BehaviorKind::Converges:
      return Behavior::converges(std::move(T), ReturnCode);
    case BehaviorKind::Diverges:
      return Behavior::diverges(std::move(T));
    case BehaviorKind::Fails:
      return Behavior::fails(std::move(T), FailureReason);
    }
    return Behavior::fails(std::move(T), "bad outcome kind");
  }();
  B.Stop = Stop;
  return B;
}

//===----------------------------------------------------------------------===//
// WeightAccumulator
//===----------------------------------------------------------------------===//

int64_t WeightAccumulator::costOf(SymId F) {
  if (F >= Known.size()) {
    Known.resize(F + 1, 0);
    Cost.resize(F + 1, 0);
  }
  if (!Known[F]) {
    Known[F] = 1;
    Cost[F] = static_cast<int64_t>(M.cost(SymbolTable::global().name(F)));
  }
  return Cost[F];
}

//===----------------------------------------------------------------------===//
// ProfileAccumulator
//===----------------------------------------------------------------------===//

/// A(f) <= B(f) for *every* function mentioned by either vector (absent
/// entries read as 0). Stronger than the refinement check's positive-only
/// depthVectorLE; pruning under this order preserves both the domination
/// verdict and the exact max-dot-product weight even when counts have
/// gone negative.
static bool entrywiseLE(const SymDepthVector &A, const SymDepthVector &B) {
  auto IA = A.begin();
  auto IB = B.begin();
  while (IA != A.end() || IB != B.end()) {
    if (IB == B.end() || (IA != A.end() && IA->first < IB->first)) {
      if (IA->second > 0)
        return false; // B reads 0 here.
      ++IA;
    } else if (IA == A.end() || IB->first < IA->first) {
      if (IB->second < 0)
        return false; // A reads 0 here.
      ++IB;
    } else {
      if (IA->second > IB->second)
        return false;
      ++IA;
      ++IB;
    }
  }
  return true;
}

void ProfileAccumulator::see(SymId F) {
  if (std::find(Alphabet.begin(), Alphabet.end(), F) == Alphabet.end())
    Alphabet.push_back(F);
}

void ProfileAccumulator::capture() {
  for (const SymDepthVector &P : Peaks)
    if (entrywiseLE(Current, P))
      return;
  std::erase_if(Peaks, [this](const SymDepthVector &P) {
    return entrywiseLE(P, Current);
  });
  if (Meter)
    // Approximate footprint of one captured peak: the map's nodes.
    Meter->charge(sizeof(SymDepthVector) +
                  Current.size() * 4 * sizeof(uint64_t));
  Peaks.push_back(Current);
}

void ProfileAccumulator::onEvent(const Event &E) {
  switch (E.Kind) {
  case EventKind::Call:
    see(E.Fn);
    // A count can pass through 0 on ill-bracketed traces; erase to keep
    // the vector canonical.
    if (++Current[E.Fn] == 0)
      Current.erase(E.Fn);
    PendingPeak = true;
    break;
  case EventKind::Return:
    see(E.Fn);
    // The profile's local maxima sit exactly at call events followed by
    // a return: capture *before* the decrement.
    if (PendingPeak) {
      capture();
      PendingPeak = false;
    }
    if (--Current[E.Fn] == 0)
      Current.erase(E.Fn);
    break;
  case EventKind::External:
    break; // Counts unchanged.
  }
}

void ProfileAccumulator::flush() {
  if (PendingPeak) {
    capture();
    PendingPeak = false;
  }
}

//===----------------------------------------------------------------------===//
// PruningHasher
//===----------------------------------------------------------------------===//

PruningHasher::PruningHasher() {
  // Seed the second chain of each pair differently so the two 64-bit
  // digests are independent (a 128-bit digest overall).
  IOB.u64(0x9e3779b97f4a7c15ull);
  MemB.u64(0x9e3779b97f4a7c15ull);
}

void PruningHasher::onEvent(const Event &E) {
  if (E.isMemoryEvent()) {
    // Kind + interned function, one fixed-size record per event. Matches
    // Event::operator== for memory events (args/result not compared).
    uint64_t Tag = (static_cast<uint64_t>(E.Kind) << 32) | E.Fn;
    MemA.u64(Tag);
    MemB.u64(Tag);
    ++NMem;
  } else {
    IOA.u64(E.Fn).u64(E.Args).u64(static_cast<uint32_t>(E.Result));
    IOB.u64(E.Fn).u64(E.Args).u64(static_cast<uint32_t>(E.Result));
    ++NIO;
  }
}

//===----------------------------------------------------------------------===//
// RefinementAccumulator / summaries
//===----------------------------------------------------------------------===//

RefinementSummary RefinementAccumulator::finish(const Outcome &O) {
  Profile.flush();
  RefinementSummary S;
  S.Kind = O.Kind;
  S.ReturnCode = O.ReturnCode;
  S.FailureReason = O.FailureReason;
  S.EventCount = Count;
  S.IOHashA = Hash.ioDigestA();
  S.IOHashB = Hash.ioDigestB();
  S.IOCount = Hash.ioCount();
  S.MemHashA = Hash.memDigestA();
  S.MemHashB = Hash.memDigestB();
  S.MemCount = Hash.memCount();
  S.Alphabet = Profile.alphabet();
  S.Peaks = Profile.peaks();
  return S;
}

RefinementSummary qcc::summarize(const Behavior &B) {
  RefinementAccumulator A;
  for (const Event &E : B.Events)
    A.onEvent(E);
  Outcome O;
  O.Kind = B.Kind;
  O.ReturnCode = B.ReturnCode;
  O.FailureReason = B.FailureReason;
  O.Stop = B.Stop;
  return A.finish(O);
}

//===----------------------------------------------------------------------===//
// Streaming refinement checks
//===----------------------------------------------------------------------===//

/// The positive-only comparison of the materialized checker, on interned
/// ids: A(f) <= B(f) for every f with A(f) > 0 (absent B entries are 0).
static bool depthVectorLE(const SymDepthVector &A, const SymDepthVector &B) {
  for (const auto &[F, C] : A) {
    if (C <= 0)
      continue;
    auto It = B.find(F);
    if (It == B.end() || It->second < C)
      return false;
  }
  return true;
}

bool qcc::pointwiseDominated(const std::vector<SymDepthVector> &Profile,
                             const std::vector<SymDepthVector> &Dominating) {
  for (const SymDepthVector &C : Profile) {
    bool Found = false;
    for (const SymDepthVector &D : Dominating) {
      if (depthVectorLE(C, D)) {
        Found = true;
        break;
      }
    }
    if (!Found)
      return false;
  }
  return true;
}

uint64_t qcc::weight(const StackMetric &M, const RefinementSummary &S) {
  // W_M = max over peaks of the dot product with the metric (clamped at
  // the empty prefix's 0). Exact for every non-negative metric: V_M only
  // rises at call events, so its prefix maximum is attained at a peak.
  SymbolTable &Table = SymbolTable::global();
  int64_t Max = 0;
  for (const SymDepthVector &P : S.Peaks) {
    int64_t V = 0;
    for (const auto &[F, C] : P)
      V += C * static_cast<int64_t>(M.cost(Table.name(F)));
    if (V > Max)
      Max = V;
  }
  return static_cast<uint64_t>(Max);
}

static std::string kindName(BehaviorKind K) {
  switch (K) {
  case BehaviorKind::Converges: return "conv";
  case BehaviorKind::Diverges: return "div";
  case BehaviorKind::Fails: return "fail";
  }
  return "?";
}

RefinementResult qcc::checkClassicRefinement(const RefinementSummary &Target,
                                             const RefinementSummary &Source) {
  if (Target.Kind != Source.Kind)
    return RefinementResult::fail(
        "behavior kinds differ: target " + kindName(Target.Kind) +
        " vs source " + kindName(Source.Kind));
  if (Target.Kind == BehaviorKind::Converges &&
      Target.ReturnCode != Source.ReturnCode)
    return RefinementResult::fail(
        "return codes differ: target " + std::to_string(Target.ReturnCode) +
        " vs source " + std::to_string(Source.ReturnCode));
  if (Target.IOCount != Source.IOCount ||
      Target.IOHashA != Source.IOHashA || Target.IOHashB != Source.IOHashB)
    return RefinementResult::fail(
        "pruned traces differ: target has " + std::to_string(Target.IOCount) +
        " I/O events vs source " + std::to_string(Source.IOCount) +
        " (digest mismatch)");
  return RefinementResult::ok();
}

RefinementResult
qcc::checkQuantitativeRefinement(const RefinementSummary &Target,
                                 const RefinementSummary &Source) {
  RefinementResult Classic = checkClassicRefinement(Target, Source);
  if (!Classic.Ok)
    return Classic;

  // Certificate 1: the pass preserved memory events exactly.
  if (Target.MemCount == Source.MemCount &&
      Target.MemHashA == Source.MemHashA &&
      Target.MemHashB == Source.MemHashB)
    return RefinementResult::ok();

  // Certificate 2: pointwise domination of the profile peaks, which is
  // equivalent to domination of the full open-call-count profiles.
  if (pointwiseDominated(Target.Peaks, Source.Peaks))
    return RefinementResult::ok();

  return RefinementResult::fail(
      "no all-metrics weight certificate: memory events differ and the "
      "target call-depth profile is not pointwise dominated");
}

RefinementResult qcc::falsifyWeightDominance(const RefinementSummary &Target,
                                             const RefinementSummary &Source,
                                             unsigned Samples,
                                             uint64_t Seed) {
  // Same alphabet order as the trace-based falsifier: target functions
  // first, then source, each in first-appearance order — the randomized
  // metric stream assigns costs by position, so order preservation makes
  // the two falsifiers sample identical metrics.
  std::vector<SymId> Functions;
  auto Collect = [&Functions](const std::vector<SymId> &Alphabet) {
    for (SymId F : Alphabet)
      if (std::find(Functions.begin(), Functions.end(), F) == Functions.end())
        Functions.push_back(F);
  };
  Collect(Target.Alphabet);
  Collect(Source.Alphabet);

  SymbolTable &Table = SymbolTable::global();
  auto Check = [&](const StackMetric &M) -> RefinementResult {
    uint64_t WT = weight(M, Target);
    uint64_t WS = weight(M, Source);
    if (WT > WS)
      return RefinementResult::fail(
          "W_M(target)=" + std::to_string(WT) + " > W_M(source)=" +
          std::to_string(WS) + " under metric " + M.str());
    return RefinementResult::ok();
  };

  // The uniform metric and every one-hot metric.
  StackMetric Uniform;
  for (SymId F : Functions)
    Uniform.setCost(Table.name(F), 1);
  if (RefinementResult R = Check(Uniform); !R.Ok)
    return R;
  for (SymId F : Functions) {
    StackMetric OneHot;
    OneHot.setCost(Table.name(F), 1);
    if (RefinementResult R = Check(OneHot); !R.Ok)
      return R;
  }

  // Randomized metrics (deterministic splitmix64 stream, same as the
  // trace-based falsifier).
  uint64_t State = Seed;
  auto Next = [&State]() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  };
  for (unsigned I = 0; I != Samples; ++I) {
    StackMetric M;
    for (SymId F : Functions)
      M.setCost(Table.name(F), static_cast<uint32_t>(Next() % 1024));
    if (RefinementResult R = Check(M); !R.Ok)
      return R;
  }
  return RefinementResult::ok();
}
