//===- events/SymbolTable.h - Interned event symbols ------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-global interner for the names and argument tuples that trace
/// events carry. Interning a function name once per program lets `Event`
/// be a small POD (two 32-bit ids instead of a heap string plus a vector),
/// which is what makes streaming translation validation allocation-free:
/// the interpreters emit millions of events but mention only a handful of
/// distinct functions.
///
/// Ids are canonical: two ids are equal iff the interned values are equal,
/// so event comparison and hashing never touch the strings again. The
/// table is append-only and guarded by a shared mutex because the batch
/// engine runs many compilations on a thread pool; `name`/`args` hand out
/// references into deque storage, which appends never invalidate.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_EVENTS_SYMBOLTABLE_H
#define QCC_EVENTS_SYMBOLTABLE_H

#include <cstdint>
#include <deque>
#include <map>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace qcc {

/// An interned function name. Id 0 is the empty string.
using SymId = uint32_t;

/// An interned tuple of external-call arguments. Id 0 is the empty tuple.
using ArgsId = uint32_t;

/// The process-wide intern table. Thread-safe; use SymbolTable::global().
class SymbolTable {
public:
  /// The singleton instance every Event goes through.
  static SymbolTable &global();

  /// Returns the canonical id of \p Name, interning it if new.
  SymId intern(std::string_view Name);

  /// The string for an interned id. The reference stays valid forever.
  const std::string &name(SymId Id) const;

  /// Returns the canonical id of \p Args, interning the tuple if new.
  ArgsId internArgs(const std::vector<int32_t> &Args);

  /// The tuple for an interned id. The reference stays valid forever.
  const std::vector<int32_t> &args(ArgsId Id) const;

  /// Number of interned names (for tests and metrics).
  size_t size() const;

private:
  SymbolTable();

  mutable std::shared_mutex Mu;
  // Deques give stable references under append, so lookups can return
  // references that outlive the lock.
  std::deque<std::string> Names;
  std::unordered_map<std::string_view, SymId> NameIds;
  std::deque<std::vector<int32_t>> ArgTuples;
  std::map<std::vector<int32_t>, ArgsId> ArgIds;
};

} // namespace qcc

#endif // QCC_EVENTS_SYMBOLTABLE_H
