//===- daemon/Daemon.h - Verification-as-a-service daemon -------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The qccd daemon: a long-lived verification server over the persistent
/// store. Clients connect on a Unix-domain socket, submit jobs with the
/// wire protocol (daemon/Protocol.h), and receive per-pass status frames
/// plus a final verdict per job. The daemon keeps the in-memory result
/// cache and the content-addressed store warm across connections, so a
/// fleet of short-lived `qcc --connect` clients amortizes verification
/// work the way one long `--batch` run does.
///
/// Supervision tree (DESIGN.md section 5f): the daemon owns one *root*
/// Supervisor; each accepted connection gets a *client* Supervisor
/// parented to the root; each job runs under the per-job Supervisor
/// runSupervisedJob creates, parented to the client token. Cancelling the
/// root (shutdown) drains every job of every client; cancelling one
/// client token (its fair-share byte budget ran out, or its socket died)
/// drains only that client's jobs. Budgets clamp, never loosen: a
/// client-requested deadline or memory budget is honoured only up to the
/// server's own per-job caps.
///
/// Concurrency: one accept thread (poll on the listening socket plus a
/// self-pipe so shutdown interrupts a blocking accept), one detached-ish
/// thread per connection doing framing I/O, and all verification work
/// multiplexed onto one shared WorkStealingPool via submit() — N clients
/// share the pool fairly instead of each spawning its own workers.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_DAEMON_DAEMON_H
#define QCC_DAEMON_DAEMON_H

#include "batch/Batch.h"
#include "daemon/Protocol.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qcc {
namespace batch {
class Watchdog;
class WorkStealingPool;
} // namespace batch
namespace store {
class VerificationStore;
} // namespace store
namespace incremental {
class Engine;
} // namespace incremental

namespace daemon {

/// Daemon configuration. Budgets here are the server's *caps*: a client
/// may request less per job, never more.
struct DaemonOptions {
  /// Filesystem path the Unix-domain socket is bound at.
  std::string SocketPath;
  /// Verification worker threads; 0 = hardware concurrency.
  unsigned Jobs = 0;
  /// Per-job wall-clock deadline cap in milliseconds (0 = none).
  uint64_t DeadlineMillis = 0;
  /// Per-job soft memory budget cap in bytes (0 = unlimited).
  uint64_t MemoryBudgetBytes = 0;
  /// Per-connection fair-share byte budget (0 = unlimited): the sum of
  /// supervisor-charged bytes across a connection's jobs. A client that
  /// crosses it is cancelled — its remaining jobs drain as Cancelled —
  /// without touching any other connection.
  uint64_t ClientBudgetBytes = 0;
  /// Budget-stopped jobs retry this many times (BatchOptions::Retries).
  unsigned Retries = 1;
  /// Ceiling on one frame's payload; hostile length fields larger than
  /// this are rejected before allocation.
  uint64_t MaxFrameBytes = DefaultMaxFrameBytes;
  /// Receive timeout per frame read in milliseconds (0 = none): an idle
  /// or wedged client cannot pin its connection thread forever.
  uint64_t RecvTimeoutMillis = 0;
  /// Idle timeout in milliseconds (0 = none): a connection that sends no
  /// frame for this long gets a clean Bye and is closed. Distinct from
  /// RecvTimeoutMillis, which guards *mid-frame* stalls (a torn peer);
  /// idling between frames is legal behaviour that merely holds a
  /// connection slot.
  uint64_t IdleTimeoutMillis = 0;
  /// Bounded admission: at most this many Submit jobs in flight across
  /// all connections (0 = unlimited). A submit over the bound is shed
  /// with an explicit Busy reply — the connection survives and the
  /// client retries with backoff — instead of queueing unboundedly on
  /// the pool while its client waits blind.
  uint64_t MaxActiveJobs = 0;
  /// Bounded connection count (0 = unlimited): an accept over the bound
  /// is answered with Busy and closed immediately.
  uint64_t MaxConnections = 0;
  /// Append each definitive verdict served (batch-journal line format)
  /// to this file, flushed per line. Under a graceful drain the journal
  /// therefore captures every in-flight job as it completes; a warm
  /// restart — or a local `qcc --batch --journal` run — resumes from it.
  std::string JournalPath;
  /// Persistent store directory (empty = no store: cache only).
  std::string StoreDir;
  /// Store LRU budget in bytes (0 = unlimited).
  uint64_t StoreBudgetBytes = 0;
  /// Re-check proofs on every store load before serving them.
  bool StoreVerify = false;
  /// Serve warm edits through the function-granular incremental engine
  /// (incremental::Engine): whole-file cache misses re-verify only the
  /// functions whose keys changed, sharing per-function work across every
  /// connection. With a StoreDir, function records and per-TU manifests
  /// persist under `<StoreDir>/funcs`.
  bool Incremental = true;
};

/// Aggregate counters, readable while the daemon runs (for tests and for
/// the qccd status line).
struct DaemonStats {
  uint64_t Connections = 0;     ///< Accepted connections, lifetime.
  uint64_t JobsServed = 0;      ///< Verdict frames sent.
  uint64_t ProtocolErrors = 0;  ///< Malformed frames answered with Error.
  uint64_t BudgetCancels = 0;   ///< Connections cancelled for fair-share.
  uint64_t JobsShed = 0;        ///< Submits refused with Busy (admission).
  uint64_t ConnectionsShed = 0; ///< Accepts refused with Busy (capacity).
  uint64_t AcceptRetries = 0;   ///< Transient accept() failures survived.
  uint64_t IdleDisconnects = 0; ///< Connections closed by idle timeout.
  uint64_t JobsJournaled = 0;   ///< Verdict lines appended to the journal.
  // Incremental-engine roll-ups across every connection (zero when the
  // engine is disabled); the same counters accumulate per connection.
  uint64_t FuncsReused = 0;     ///< Checked bounds served from key hits.
  uint64_t FuncsReVerified = 0; ///< Bounds derived and checked fresh.
  uint64_t FuncsInvalidated = 0;///< Manifest entries whose key changed.
  uint64_t ProofNodes = 0;      ///< Derivation nodes across served proofs.
  uint64_t ProofCheckMicros = 0;///< Time inside the proof checker.
};

/// The daemon. Construct, check valid(), then serve() until another
/// thread (a signal handler, a Shutdown frame, a test) calls
/// requestShutdown().
class Daemon {
public:
  explicit Daemon(const DaemonOptions &Opts);
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// False when the socket could not be bound (diagnostic in error()).
  bool valid() const { return ListenFd >= 0; }
  const std::string &error() const { return Error; }

  /// Accepts and serves connections until requestShutdown(), then drains:
  /// shuts every live connection socket down and joins its thread before
  /// returning. Runs on the caller's thread.
  void serve();

  /// Stops the accept loop and cancels the root supervisor, draining
  /// every in-flight job of every client. Only atomics, one pipe write:
  /// async-signal-safe, callable from a SIGINT/SIGTERM handler. The
  /// serve() thread performs the non-signal-safe part of the drain
  /// (socket shutdown + thread joins) when it wakes.
  void requestShutdown();

  /// Graceful drain (SIGTERM): stop accepting, let every in-flight job
  /// run to its verdict (journaled when a JournalPath is set), send each
  /// client a clean Bye frame, then return from serve(). Unlike
  /// requestShutdown, the root supervisor is *not* cancelled — committed
  /// work finishes. Async-signal-safe.
  void requestDrain();

  /// True once requestDrain (or requestShutdown) was called.
  bool draining() const {
    return Draining.load(std::memory_order_acquire);
  }

  DaemonStats stats() const;

  /// The root supervision token (tests parent probes to it).
  Supervisor &rootSupervisor() { return Root; }

private:
  struct Connection;
  void handleConnection(Connection &Conn);
  bool handleSubmit(Connection &Conn, const std::string &Payload);
  /// Shuts down every live connection socket and joins exited threads;
  /// with \p JoinAll, joins every thread (the serve()-exit drain).
  void reapConnections(bool JoinAll);
  /// Appends one definitive verdict to the journal (no-op without a
  /// JournalPath). Batch-journal line format, flushed per line.
  void journalVerdict(const batch::JobKey &Key, bool Ok);

  DaemonOptions Opts;
  std::string Error;
  int ListenFd = -1;
  int WakePipe[2] = {-1, -1}; ///< Self-pipe: shutdown interrupts poll().
  Supervisor Root;
  std::atomic<bool> ShutdownRequested{false};
  std::atomic<bool> Draining{false};
  /// Jobs admitted and not yet completed, across all connections: the
  /// admission bound (MaxActiveJobs) checks against this.
  std::atomic<uint64_t> ActiveJobs{0};

  // Warm state shared by every connection.
  batch::ResultCache Cache;
  std::unique_ptr<store::VerificationStore> Store;
  std::unique_ptr<incremental::Engine> Inc; ///< Null when disabled.
  std::unique_ptr<batch::WorkStealingPool> Pool;
  std::unique_ptr<batch::Watchdog> Dog;

  mutable std::mutex StatsM;
  DaemonStats Counters;

  mutable std::mutex ConnM;
  std::vector<std::unique_ptr<Connection>> Connections;

  mutable std::mutex JournalM;
  /// Keys already journaled (idempotence: a verdict served twice — warm
  /// hits — appends once).
  std::vector<batch::JobKey> Journaled;
};

} // namespace daemon
} // namespace qcc

#endif // QCC_DAEMON_DAEMON_H
