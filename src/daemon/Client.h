//===- daemon/Client.h - qccd client ----------------------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the qccd wire protocol: connect to a daemon's
/// Unix-domain socket, submit jobs one at a time, and collect the
/// streamed per-pass status frames plus the final verdict. `qcc
/// --connect` is a thin loop over this class; tests drive it directly.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_DAEMON_CLIENT_H
#define QCC_DAEMON_CLIENT_H

#include "daemon/Protocol.h"

#include <string>
#include <vector>

namespace qcc {
namespace daemon {

/// What one submitted job came back with.
struct ClientOutcome {
  /// True when a Verdict frame arrived; false on protocol/server error
  /// (Error holds the reason, Result is unspecified).
  bool HaveVerdict = false;
  batch::ProgramResult Result;
  std::vector<PassStatus> Passes; ///< Status frames, in arrival order.
  std::string Error;
};

/// One connection to a qccd daemon. Not thread-safe: one conversation
/// per connection (open several clients for parallelism — that is the
/// point of the daemon).
class DaemonClient {
public:
  DaemonClient() = default;
  ~DaemonClient();

  DaemonClient(const DaemonClient &) = delete;
  DaemonClient &operator=(const DaemonClient &) = delete;

  /// Connects to \p SocketPath. False (with error()) when the daemon is
  /// not there.
  bool connect(const std::string &SocketPath);
  bool connected() const { return Fd >= 0; }
  void disconnect();
  const std::string &error() const { return Err; }

  /// Submits one job and blocks until its verdict (or an error).
  ClientOutcome verify(const JobRequest &Req);

  /// Liveness round-trip.
  bool ping();

  /// Asks the daemon to drain and exit.
  bool shutdownServer();

private:
  int Fd = -1;
  std::string Err;
};

} // namespace daemon
} // namespace qcc

#endif // QCC_DAEMON_CLIENT_H
