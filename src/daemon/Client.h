//===- daemon/Client.h - qccd client ----------------------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the qccd wire protocol: connect to a daemon's
/// Unix-domain socket, submit jobs one at a time, and collect the
/// streamed per-pass status frames plus the final verdict. `qcc
/// --connect` is a thin loop over this class; tests drive it directly.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_DAEMON_CLIENT_H
#define QCC_DAEMON_CLIENT_H

#include "daemon/Protocol.h"

#include <string>
#include <vector>

namespace qcc {
namespace daemon {

/// What one submitted job came back with.
struct ClientOutcome {
  /// True when a Verdict frame arrived; false on protocol/server error
  /// (Error holds the reason, Result is unspecified).
  bool HaveVerdict = false;
  batch::ProgramResult Result;
  std::vector<PassStatus> Passes; ///< Status frames, in arrival order.
  std::string Error;
  /// The server shed this submit with a Busy frame: the connection is
  /// intact; retry the same job after a backoff.
  bool Busy = false;
  /// The server said Bye (draining or idle timeout): the connection is
  /// closed; reconnect — possibly to a restarted daemon — before
  /// retrying.
  bool ServerClosing = false;
  /// The byte stream itself failed (torn frame, vanished peer, send
  /// error): the connection was dropped; reconnect-and-resubmit is the
  /// right retry. Distinct from a deliberate server Error frame, which
  /// would only repeat.
  bool Transport = false;
};

/// Bounded-retry policy for verifyWithRetry / connectWithRetry:
/// exponential backoff with deterministic jitter. Every delay is
/// `min(Max, Base << attempt)` halved-plus-jittered, so a fleet of
/// clients bounced by the same restart does not reconnect in lockstep.
struct RetryPolicy {
  unsigned ConnectAttempts = 4;  ///< connect() tries per (re)connection.
  unsigned BusyRetries = 8;      ///< Busy sheds tolerated per job.
  unsigned TransportRetries = 2; ///< reconnect+resubmit after torn
                                 ///< frames, Bye, or a vanished daemon.
  uint64_t BaseDelayMillis = 25;
  uint64_t MaxDelayMillis = 1000;
  uint64_t JitterSeed = 1; ///< Seeds the jitter stream (deterministic).
};

/// The backoff delay for 0-based \p Attempt under \p P, with jitter
/// drawn from \p RngState (splitmix64, advanced per call). Exposed so
/// tests can pin the schedule.
uint64_t backoffMillis(const RetryPolicy &P, unsigned Attempt,
                       uint64_t &RngState);

/// One connection to a qccd daemon. Not thread-safe: one conversation
/// per connection (open several clients for parallelism — that is the
/// point of the daemon).
class DaemonClient {
public:
  DaemonClient() = default;
  ~DaemonClient();

  DaemonClient(const DaemonClient &) = delete;
  DaemonClient &operator=(const DaemonClient &) = delete;

  /// Connects to \p SocketPath. False (with error()) when the daemon is
  /// not there.
  bool connect(const std::string &SocketPath);
  bool connected() const { return Fd >= 0; }
  void disconnect();
  const std::string &error() const { return Err; }

  /// Submits one job and blocks until its verdict (or an error).
  ClientOutcome verify(const JobRequest &Req);

  /// connect() with bounded retry and backoff: a daemon mid-restart is
  /// reachable a moment later. False when every attempt failed.
  bool connectWithRetry(const std::string &SocketPath, const RetryPolicy &P);

  /// verify() hardened for an unreliable daemon: retries after Busy
  /// sheds (connection intact, backoff first), reconnects and resubmits
  /// after torn frames, Bye, or a crashed daemon — all within the
  /// policy's bounds. Returns the last outcome when every retry is
  /// exhausted; content-keyed verdicts make the resubmits idempotent.
  ClientOutcome verifyWithRetry(const JobRequest &Req,
                                const std::string &SocketPath,
                                const RetryPolicy &P);

  /// Liveness round-trip.
  bool ping();

  /// Asks the daemon to drain and exit.
  bool shutdownServer();

private:
  int Fd = -1;
  std::string Err;
  uint64_t RngState = 0; ///< Jitter stream; seeded on first retry use.
};

} // namespace daemon
} // namespace qcc

#endif // QCC_DAEMON_CLIENT_H
