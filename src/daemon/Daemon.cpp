//===- daemon/Daemon.cpp - Verification-as-a-service daemon ---------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"

#include "batch/ThreadPool.h"
#include "batch/Watchdog.h"
#include "incremental/Incremental.h"
#include "store/Store.h"
#include "support/FailPoint.h"
#include "support/Io.h"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace qcc;
using namespace qcc::batch;
using namespace qcc::daemon;

//===----------------------------------------------------------------------===//
// Connection state
//===----------------------------------------------------------------------===//

/// One accepted client. The connection thread owns the framing I/O; jobs
/// run on the shared pool under the per-connection supervisor, so budget
/// or shutdown cancellation drains this client's work without touching
/// any other connection.
struct Daemon::Connection {
  int Fd = -1;
  /// Parented to the daemon root: root cancel reaches every job.
  Supervisor Client;
  /// Supervisor-charged bytes across all of this client's jobs, billed
  /// against DaemonOptions::ClientBudgetBytes.
  uint64_t BilledBytes = 0;
  /// Per-connection incremental counters (accumulated from every job's
  /// metrics; zero when the engine is disabled or jobs were cache hits).
  uint64_t FuncsReused = 0;
  uint64_t FuncsReVerified = 0;
  uint64_t FuncsInvalidated = 0;
  uint64_t ProofNodes = 0;
  uint64_t ProofCheckMicros = 0;
  std::thread Thread;
  std::atomic<bool> Finished{false};

  explicit Connection(int Fd, const Supervisor *Root)
      : Fd(Fd), Client(Root) {}
};

//===----------------------------------------------------------------------===//
// Construction / teardown
//===----------------------------------------------------------------------===//

Daemon::Daemon(const DaemonOptions &O) : Opts(O) {
  if (Opts.SocketPath.empty()) {
    Error = "empty socket path";
    return;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: " + Opts.SocketPath;
    return;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  if (!Opts.StoreDir.empty()) {
    store::StoreOptions SO;
    SO.Dir = Opts.StoreDir;
    SO.BudgetBytes = Opts.StoreBudgetBytes;
    SO.VerifyProofsOnLoad = Opts.StoreVerify;
    std::string StoreError;
    Store = store::VerificationStore::open(SO, &StoreError);
    if (!Store) {
      Error = "cannot open store: " + StoreError;
      return;
    }
  }

  if (Opts.Incremental) {
    incremental::EngineOptions EO;
    if (!Opts.StoreDir.empty())
      EO.FuncStoreDir = Opts.StoreDir + "/funcs";
    Inc = std::make_unique<incremental::Engine>(std::move(EO));
  }

  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return;
  }
  // A previous daemon that crashed leaves the socket file behind; bind
  // would fail with EADDRINUSE even though nobody is listening. Unlink
  // first — the connect-before-serve race this opens is benign (the
  // client retries or fails cleanly).
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    Error = std::string("bind/listen ") + Opts.SocketPath + ": " +
            std::strerror(errno);
    ::close(Fd);
    return;
  }
  if (::pipe(WakePipe) < 0) {
    Error = std::string("pipe: ") + std::strerror(errno);
    ::close(Fd);
    return;
  }
  ListenFd = Fd;

  unsigned Workers = Opts.Jobs
                         ? Opts.Jobs
                         : std::max(1u, std::thread::hardware_concurrency());
  Pool = std::make_unique<WorkStealingPool>(Workers);
  if (Opts.DeadlineMillis)
    Dog = std::make_unique<Watchdog>(
        std::clamp<uint64_t>(Opts.DeadlineMillis / 8, 2, 250));
}

Daemon::~Daemon() {
  requestShutdown();
  // Drain every connection thread before the pool, watchdog, cache and
  // store go away: a connection blocked on a submitted job completes
  // (root cancel makes the job drain fast), then its thread exits.
  reapConnections(/*JoinAll=*/true);
  if (ListenFd >= 0)
    ::close(ListenFd);
  for (int &Fd : WakePipe)
    if (Fd >= 0) {
      ::close(Fd);
      Fd = -1;
    }
  if (!Opts.SocketPath.empty())
    ::unlink(Opts.SocketPath.c_str());
}

void Daemon::requestShutdown() {
  // Only atomics and one pipe write past this line: callable from a
  // signal handler. The cancel drains every in-flight job through the
  // supervision tree; the pipe wakes serve(), which does the lock-taking
  // part of the drain (socket shutdown, thread joins).
  Draining.store(true, std::memory_order_release);
  ShutdownRequested.store(true, std::memory_order_release);
  Root.cancel(StopCause::Cancelled);
  if (WakePipe[1] >= 0) {
    char B = 1;
    (void)!::write(WakePipe[1], &B, 1);
  }
}

void Daemon::requestDrain() {
  // The graceful half of requestShutdown: the accept loop stops, the
  // connection sockets' read sides close (reapConnections), but the root
  // supervisor is NOT cancelled — every admitted job runs to its verdict,
  // is journaled, and its client gets the verdict plus a clean Bye. Same
  // async-signal-safety budget: atomics and one pipe write.
  Draining.store(true, std::memory_order_release);
  ShutdownRequested.store(true, std::memory_order_release);
  if (WakePipe[1] >= 0) {
    char B = 1;
    (void)!::write(WakePipe[1], &B, 1);
  }
}

void Daemon::reapConnections(bool JoinAll) {
  // Joining with ConnM held would deadlock against a connection thread
  // that is itself waiting for ConnM (a Shutdown-frame handler): move
  // the candidates out, join unlocked.
  std::vector<std::unique_ptr<Connection>> Reaped;
  {
    std::lock_guard<std::mutex> G(ConnM);
    if (ShutdownRequested.load(std::memory_order_acquire))
      for (std::unique_ptr<Connection> &C : Connections)
        if (!C->Finished.load(std::memory_order_acquire))
          // Read side only: a blocked readFrame unblocks (EOF), but the
          // write side stays open so the connection thread can still
          // deliver an in-flight verdict and the clean Bye frame the
          // drain contract promises.
          ::shutdown(C->Fd, SHUT_RD);
    auto Mid = std::stable_partition(
        Connections.begin(), Connections.end(),
        [JoinAll](const std::unique_ptr<Connection> &C) {
          return !JoinAll && !C->Finished.load(std::memory_order_acquire);
        });
    std::move(Mid, Connections.end(), std::back_inserter(Reaped));
    Connections.erase(Mid, Connections.end());
  }
  for (std::unique_ptr<Connection> &C : Reaped)
    if (C->Thread.joinable())
      C->Thread.join();
}

DaemonStats Daemon::stats() const {
  std::lock_guard<std::mutex> G(StatsM);
  return Counters;
}

//===----------------------------------------------------------------------===//
// Accept loop
//===----------------------------------------------------------------------===//

void Daemon::serve() {
  if (!valid())
    return;
  // Capped exponential backoff for transient accept() failures. A file-
  // descriptor famine (EMFILE/ENFILE: this process or the host is out of
  // fds, usually because clients outnumber what ulimit allows) is not
  // fatal and not busy-waitable: retrying instantly spins the CPU while
  // holding the very fds that caused the famine. Sleep 1ms, doubling to a
  // 100ms cap, and reset on the next successful accept.
  uint64_t BackoffMillis = 0;
  while (!ShutdownRequested.load(std::memory_order_acquire)) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {WakePipe[0], POLLIN, 0}};
    int N = ::poll(Fds, 2, -1);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (ShutdownRequested.load(std::memory_order_acquire))
      break;
    if (!(Fds[0].revents & POLLIN))
      continue;
    int Fd;
    // "daemon.accept": injected errors take the place of the accept()
    // call itself; the pending connection stays queued and is picked up
    // once the fault window passes — exactly how a transient famine
    // behaves.
    if (auto FA = failpoint::fire("daemon.accept")) {
      errno = FA.K == failpoint::Kind::Err ? FA.Errno : ECONNABORTED;
      Fd = -1;
    } else {
      Fd = ::accept(ListenFd, nullptr, nullptr);
    }
    if (Fd < 0) {
      int E = errno;
      if (E == EMFILE || E == ENFILE || E == ENOBUFS || E == ENOMEM) {
        {
          std::lock_guard<std::mutex> G(StatsM);
          ++Counters.AcceptRetries;
        }
        BackoffMillis = BackoffMillis ? std::min<uint64_t>(BackoffMillis * 2,
                                                           100)
                                      : 1;
        // Sleep on the wake pipe, not the clock: shutdown interrupts the
        // backoff the same way it interrupts the main poll.
        pollfd Wake = {WakePipe[0], POLLIN, 0};
        ::poll(&Wake, 1, static_cast<int>(BackoffMillis));
        continue;
      }
      if (E == EINTR || E == ECONNABORTED) {
        // The connection died between poll and accept (or a signal
        // landed): nothing to back off from, take the next one.
        std::lock_guard<std::mutex> G(StatsM);
        ++Counters.AcceptRetries;
      }
      continue;
    }
    BackoffMillis = 0;

    // Reap finished connections so a long-lived daemon's vector does not
    // grow with every client that ever connected.
    reapConnections(/*JoinAll=*/false);

    // Connection-count shed: over the cap, the newcomer gets an explicit
    // Busy (retry with backoff) instead of a thread and a silent queue.
    if (Opts.MaxConnections) {
      size_t Live;
      {
        std::lock_guard<std::mutex> G(ConnM);
        Live = Connections.size();
      }
      if (Live >= Opts.MaxConnections) {
        {
          std::lock_guard<std::mutex> G(StatsM);
          ++Counters.ConnectionsShed;
        }
        sendFrame(Fd, MsgType::Busy, "connection limit reached");
        ::close(Fd);
        continue;
      }
    }

    Connection *Conn;
    {
      std::lock_guard<std::mutex> G(ConnM);
      Connections.push_back(std::make_unique<Connection>(Fd, &Root));
      Conn = Connections.back().get();
    }
    {
      std::lock_guard<std::mutex> SG(StatsM);
      ++Counters.Connections;
    }
    Conn->Thread = std::thread([this, Conn] {
      handleConnection(*Conn);
      ::close(Conn->Fd);
      Conn->Finished.store(true, std::memory_order_release);
    });
  }
  // The serve()-exit drain: unblock every connection (shutdown flag is
  // set, so reap shuts their sockets down) and join their threads, so
  // the caller observes a fully quiesced daemon when serve() returns.
  reapConnections(/*JoinAll=*/true);
}

//===----------------------------------------------------------------------===//
// Connection handling
//===----------------------------------------------------------------------===//

static void setRecvTimeout(int Fd, uint64_t Millis) {
  if (Millis == 0)
    return;
  timeval Tv;
  Tv.tv_sec = static_cast<time_t>(Millis / 1000);
  Tv.tv_usec = static_cast<suseconds_t>((Millis % 1000) * 1000);
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
}

void Daemon::handleConnection(Connection &Conn) {
  int Fd = Conn.Fd;
  // One socket timeout serves both guards: the idle timeout (between
  // frames) when configured, else the per-frame receive timeout. The
  // frame reader classifies which one fired — a timeout before the first
  // header byte is an idle peer, one inside a frame is a torn peer.
  uint64_t Timeout = Opts.RecvTimeoutMillis;
  if (Opts.IdleTimeoutMillis &&
      (Timeout == 0 || Opts.IdleTimeoutMillis < Timeout))
    Timeout = Opts.IdleTimeoutMillis;
  setRecvTimeout(Fd, Timeout);
  for (;;) {
    Frame F;
    FrameStatus S = readFrame(Fd, F, Opts.MaxFrameBytes);
    if (S == FrameStatus::Eof) {
      // Clean goodbye on a frame boundary. During a drain the goodbye is
      // ours to say: the read side was shut down under the client, who
      // still deserves a clean close frame before the socket dies.
      if (draining())
        sendFrame(Fd, MsgType::Bye, "draining");
      return;
    }
    if (S == FrameStatus::IdleTimeout && Opts.IdleTimeoutMillis) {
      {
        std::lock_guard<std::mutex> G(StatsM);
        ++Counters.IdleDisconnects;
      }
      sendFrame(Fd, MsgType::Bye, "idle timeout");
      return;
    }
    if (S != FrameStatus::Ok) {
      // The stream is out of sync (or the peer died mid-frame): report
      // what we saw — best-effort; the peer may already be gone — and
      // disconnect. Never resynchronize by scanning for magic: that is
      // how protocol parsers grow exploitable heuristics.
      {
        std::lock_guard<std::mutex> G(StatsM);
        ++Counters.ProtocolErrors;
      }
      sendFrame(Fd, MsgType::Error,
                std::string("malformed frame: ") + frameStatusName(S));
      return;
    }

    switch (F.Type) {
    case MsgType::Ping:
      if (!sendFrame(Fd, MsgType::Pong, ""))
        return;
      break;
    case MsgType::Shutdown:
      requestShutdown();
      return;
    case MsgType::Submit:
      if (!handleSubmit(Conn, F.Payload))
        return;
      break;
    default: {
      // A well-framed message the server has no business receiving
      // (Status/Verdict/Error/Pong are server-to-client; unknown types
      // are future protocol). One Error reply, then disconnect — type
      // confusion is a protocol violation like any other.
      std::lock_guard<std::mutex> G(StatsM);
      ++Counters.ProtocolErrors;
      sendFrame(Fd, MsgType::Error,
                "unexpected message type " +
                    std::to_string(static_cast<uint32_t>(F.Type)));
      return;
    }
    }
  }
}

bool Daemon::handleSubmit(Connection &Conn, const std::string &Payload) {
  JobRequest Req;
  if (!decodeJobRequest(Payload, Req)) {
    {
      std::lock_guard<std::mutex> G(StatsM);
      ++Counters.ProtocolErrors;
    }
    sendFrame(Conn.Fd, MsgType::Error, "malformed job request");
    return false;
  }
  if (Conn.Client.stopRequested()) {
    // Budget-cancelled (or shutting down): refuse further work on this
    // connection, but frame the refusal properly.
    sendFrame(Conn.Fd, MsgType::Error,
              std::string("connection cancelled: ") +
                  stopCauseName(Conn.Client.cause()));
    return false;
  }
  if (draining()) {
    // Drain admits nothing new; jobs already in flight finish. The Bye
    // tells the client to reconnect (to the restarted daemon) or fall
    // back to local verification — not to retry here.
    sendFrame(Conn.Fd, MsgType::Bye, "draining");
    return false;
  }
  // Bounded admission: an atomic reserve-then-check, so concurrent
  // submits cannot all squeeze past the bound. A shed submit costs the
  // client one Busy round-trip, not a blind wait behind an unbounded
  // queue — and the connection survives to retry.
  uint64_t Reserved = ActiveJobs.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (Opts.MaxActiveJobs && Reserved > Opts.MaxActiveJobs) {
    ActiveJobs.fetch_sub(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> G(StatsM);
      ++Counters.JobsShed;
    }
    return sendFrame(Conn.Fd, MsgType::Busy,
                     "server at capacity: " +
                         std::to_string(Opts.MaxActiveJobs) +
                         " jobs in flight");
  }

  // Budgets clamp: the client's request can only tighten the server's
  // per-job caps, never exceed them. Zero means "server default".
  BatchOptions JobOpts;
  JobOpts.CheckTheorem1 = Req.CheckTheorem1;
  JobOpts.Cache = &Cache;
  JobOpts.Store = Store.get();
  JobOpts.Retries = Opts.Retries;
  JobOpts.DeadlineMillis = Opts.DeadlineMillis;
  if (Req.DeadlineMillis &&
      (Opts.DeadlineMillis == 0 || Req.DeadlineMillis < Opts.DeadlineMillis))
    JobOpts.DeadlineMillis = Req.DeadlineMillis;
  JobOpts.MemoryBudgetBytes = Opts.MemoryBudgetBytes;
  if (Req.MemoryBudgetBytes &&
      (Opts.MemoryBudgetBytes == 0 ||
       Req.MemoryBudgetBytes < Opts.MemoryBudgetBytes))
    JobOpts.MemoryBudgetBytes = Req.MemoryBudgetBytes;
  JobOpts.Interrupt = &Conn.Client;
  JobOpts.Incremental = Inc.get();

  // A client-requested deadline needs the watchdog even when the server
  // itself runs without one.
  Watchdog *UseDog = Dog.get();
  std::unique_ptr<Watchdog> LocalDog;
  if (!UseDog && JobOpts.DeadlineMillis) {
    LocalDog = std::make_unique<Watchdog>(
        std::clamp<uint64_t>(JobOpts.DeadlineMillis / 8, 2, 250));
    UseDog = LocalDog.get();
  }

  // Run on the shared pool; block this connection thread until done.
  // The framing thread doing no verification work itself is what lets N
  // clients share Jobs workers fairly instead of oversubscribing.
  ProgramResult Result;
  uint64_t Charged = 0;
  {
    std::mutex DoneM;
    std::condition_variable DoneCv;
    bool Done = false;
    Pool->submit([&] {
      Result = runSupervisedJob(Req.Job, JobOpts, UseDog, &Charged);
      std::lock_guard<std::mutex> G(DoneM);
      Done = true;
      DoneCv.notify_one();
    });
    std::unique_lock<std::mutex> L(DoneM);
    DoneCv.wait(L, [&] { return Done; });
  }
  ActiveJobs.fetch_sub(1, std::memory_order_acq_rel);

  // Every definitive verdict is journaled as it completes (idempotent,
  // flushed per line): a graceful drain therefore leaves a journal that
  // names exactly the in-flight work that finished, and a warm restart
  // (or a local --batch --journal run) resumes from it.
  if (Result.Status == JobStatus::Ok || Result.Status == JobStatus::Failed)
    journalVerdict(jobKey(Req.Job, Req.CheckTheorem1), Result.Ok);

  // Fair-share accounting: bill the client for everything its job made
  // the server allocate (all attempts plus store I/O). Crossing the
  // budget cancels this connection's token only — in-flight and
  // subsequent jobs of *this* client drain; every other client is
  // untouched (the cancellation tree argument, DESIGN.md section 5f).
  Conn.BilledBytes += Charged;
  if (Opts.ClientBudgetBytes && Conn.BilledBytes > Opts.ClientBudgetBytes &&
      !Conn.Client.stopRequested()) {
    Conn.Client.cancel(StopCause::MemoryBudget);
    std::lock_guard<std::mutex> G(StatsM);
    ++Counters.BudgetCancels;
  }

  // Per-connection incremental accounting, rolled up into the daemon
  // stats alongside the job count (cache/store hits contribute zeros:
  // their verdicts were never re-derived).
  Conn.FuncsReused += Result.Metrics.FuncsReused;
  Conn.FuncsReVerified += Result.Metrics.FuncsReVerified;
  Conn.FuncsInvalidated += Result.Metrics.FuncsInvalidated;
  Conn.ProofNodes += Result.Metrics.ProofNodes;
  Conn.ProofCheckMicros += Result.Metrics.ProofCheckMicros;

  // Count the job before streaming its verdict: a client that has the
  // verdict in hand must already see it in stats(), whatever this
  // connection thread does next.
  {
    std::lock_guard<std::mutex> G(StatsM);
    ++Counters.JobsServed;
    Counters.FuncsReused += Result.Metrics.FuncsReused;
    Counters.FuncsReVerified += Result.Metrics.FuncsReVerified;
    Counters.FuncsInvalidated += Result.Metrics.FuncsInvalidated;
    Counters.ProofNodes += Result.Metrics.ProofNodes;
    Counters.ProofCheckMicros += Result.Metrics.ProofCheckMicros;
  }

  // Stream per-pass status frames, then the verdict. Send failures mean
  // the client is gone; stop writing.
  for (const auto &[Pass, Micros] : Result.Metrics.PassMicros)
    if (!sendFrame(Conn.Fd, MsgType::Status,
                   encodePassStatus(PassStatus{Pass, Micros})))
      return false;
  if (!sendFrame(Conn.Fd, MsgType::Verdict, encodeVerdict(Result)))
    return false;
  return true;
}

void Daemon::journalVerdict(const batch::JobKey &Key, bool Ok) {
  if (Opts.JournalPath.empty())
    return;
  std::lock_guard<std::mutex> G(JournalM);
  for (const batch::JobKey &K : Journaled)
    if (K == Key)
      return;
  // Batch-journal line format ("ok <primary><verify>\n", 32 hex digits):
  // the same file resumes either a restarted daemon's clients or a local
  // `qcc --batch --journal` run.
  std::ofstream Out(Opts.JournalPath, std::ios::app);
  if (!Out)
    return;
  char Line[48];
  std::snprintf(Line, sizeof Line, " %016llx%016llx\n",
                static_cast<unsigned long long>(Key.Primary),
                static_cast<unsigned long long>(Key.Verify));
  Out << (Ok ? "ok" : "failed") << Line;
  Out.flush();
  Journaled.push_back(Key);
  std::lock_guard<std::mutex> SG(StatsM);
  ++Counters.JobsJournaled;
}
