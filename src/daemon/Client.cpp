//===- daemon/Client.cpp - qccd client ------------------------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"

#include "support/FailPoint.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace qcc;
using namespace qcc::daemon;

namespace {

uint64_t splitmix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

void sleepMillis(uint64_t Millis) {
  if (Millis)
    std::this_thread::sleep_for(std::chrono::milliseconds(Millis));
}

} // namespace

uint64_t qcc::daemon::backoffMillis(const RetryPolicy &P, unsigned Attempt,
                                    uint64_t &RngState) {
  // Exponential with full jitter over the top half: delay/2 fixed plus a
  // uniform draw over the rest. Deterministic per seed, decorrelated per
  // client — a restart does not get a synchronized reconnect stampede.
  uint64_t Delay = P.BaseDelayMillis;
  for (unsigned I = 0; I != Attempt && Delay < P.MaxDelayMillis; ++I)
    Delay *= 2;
  Delay = std::min(Delay, P.MaxDelayMillis);
  if (Delay <= 1)
    return Delay;
  uint64_t Half = Delay / 2;
  return Half + splitmix64(RngState) % (Delay - Half + 1);
}

DaemonClient::~DaemonClient() { disconnect(); }

void DaemonClient::disconnect() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool DaemonClient::connect(const std::string &SocketPath) {
  disconnect();
  // "client.connect": an injected error stands in for a daemon that is
  // down or still binding its socket.
  if (auto FA = failpoint::fire("client.connect")) {
    (void)FA;
    Err = "connect " + SocketPath + ": " + std::strerror(errno);
    return false;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + SocketPath;
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int S = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (S < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = "connect " + SocketPath + ": " + std::strerror(errno);
    ::close(S);
    return false;
  }
  Fd = S;
  Err.clear();
  return true;
}

bool DaemonClient::connectWithRetry(const std::string &SocketPath,
                                    const RetryPolicy &P) {
  if (RngState == 0)
    RngState = P.JitterSeed ? P.JitterSeed : 1;
  unsigned Attempts = std::max(1u, P.ConnectAttempts);
  for (unsigned A = 0; A != Attempts; ++A) {
    if (A != 0)
      sleepMillis(backoffMillis(P, A - 1, RngState));
    if (connect(SocketPath))
      return true;
  }
  return false;
}

ClientOutcome DaemonClient::verify(const JobRequest &Req) {
  ClientOutcome Out;
  if (Fd < 0) {
    Out.Error = "not connected";
    Out.Transport = true;
    return Out;
  }
  if (!sendFrame(Fd, MsgType::Submit, encodeJobRequest(Req))) {
    Out.Error = "send failed: daemon gone";
    Out.Transport = true;
    disconnect();
    return Out;
  }
  // Collect Status frames until the Verdict (or an Error) closes the
  // conversation for this job.
  for (;;) {
    Frame F;
    FrameStatus S = readFrame(Fd, F);
    if (S != FrameStatus::Ok) {
      Out.Error = std::string("protocol: ") + frameStatusName(S);
      Out.Transport = true;
      disconnect();
      return Out;
    }
    switch (F.Type) {
    case MsgType::Status: {
      PassStatus P;
      if (!decodePassStatus(F.Payload, P)) {
        Out.Error = "malformed status frame";
        Out.Transport = true;
        disconnect();
        return Out;
      }
      Out.Passes.push_back(std::move(P));
      break;
    }
    case MsgType::Verdict:
      if (!decodeVerdict(F.Payload, Out.Result)) {
        Out.Error = "malformed verdict frame";
        Out.Transport = true;
        disconnect();
        return Out;
      }
      Out.HaveVerdict = true;
      return Out;
    case MsgType::Busy:
      // An admission shed, not an error: the connection is intact and
      // the server wants this job again after a backoff.
      Out.Busy = true;
      Out.Error = "busy: " + F.Payload;
      return Out;
    case MsgType::Bye:
      // Clean close (drain or idle timeout): nothing further will be
      // served on this connection.
      Out.ServerClosing = true;
      Out.Error = "server closing: " + F.Payload;
      disconnect();
      return Out;
    case MsgType::Error:
      Out.Error = F.Payload;
      // The server disconnects after Error; mirror it.
      disconnect();
      return Out;
    default:
      Out.Error = "unexpected frame type " +
                  std::to_string(static_cast<uint32_t>(F.Type));
      Out.Transport = true;
      disconnect();
      return Out;
    }
  }
}

ClientOutcome DaemonClient::verifyWithRetry(const JobRequest &Req,
                                            const std::string &SocketPath,
                                            const RetryPolicy &P) {
  if (RngState == 0)
    RngState = P.JitterSeed ? P.JitterSeed : 1;
  unsigned BusyLeft = P.BusyRetries;
  unsigned TransportLeft = P.TransportRetries;
  unsigned Attempt = 0;
  for (;;) {
    if (!connected() && !connectWithRetry(SocketPath, P)) {
      ClientOutcome Out;
      Out.Error = Err.empty() ? "daemon unreachable" : Err;
      Out.Transport = true;
      return Out;
    }
    ClientOutcome Out = verify(Req);
    if (Out.HaveVerdict)
      return Out;
    if (Out.Busy) {
      if (BusyLeft == 0)
        return Out;
      --BusyLeft;
      sleepMillis(backoffMillis(P, Attempt++, RngState));
      continue;
    }
    if (Out.Transport || Out.ServerClosing) {
      // Torn frame, vanished or draining daemon: reconnect and resubmit.
      // Verdicts are content-keyed, so a job whose verdict was lost in
      // flight re-serves warm — the resubmit is idempotent.
      if (TransportLeft == 0)
        return Out;
      --TransportLeft;
      sleepMillis(backoffMillis(P, Attempt++, RngState));
      continue;
    }
    // A deliberate server Error frame (malformed request, budget cancel):
    // retrying the same bytes would only repeat it.
    return Out;
  }
}

bool DaemonClient::ping() {
  if (Fd < 0)
    return false;
  if (!sendFrame(Fd, MsgType::Ping, ""))
    return false;
  Frame F;
  return readFrame(Fd, F) == FrameStatus::Ok && F.Type == MsgType::Pong;
}

bool DaemonClient::shutdownServer() {
  if (Fd < 0)
    return false;
  return sendFrame(Fd, MsgType::Shutdown, "");
}
