//===- daemon/Client.cpp - qccd client ------------------------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace qcc;
using namespace qcc::daemon;

DaemonClient::~DaemonClient() { disconnect(); }

void DaemonClient::disconnect() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool DaemonClient::connect(const std::string &SocketPath) {
  disconnect();
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + SocketPath;
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int S = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (S < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Err = "connect " + SocketPath + ": " + std::strerror(errno);
    ::close(S);
    return false;
  }
  Fd = S;
  Err.clear();
  return true;
}

ClientOutcome DaemonClient::verify(const JobRequest &Req) {
  ClientOutcome Out;
  if (Fd < 0) {
    Out.Error = "not connected";
    return Out;
  }
  if (!sendFrame(Fd, MsgType::Submit, encodeJobRequest(Req))) {
    Out.Error = "send failed: daemon gone";
    disconnect();
    return Out;
  }
  // Collect Status frames until the Verdict (or an Error) closes the
  // conversation for this job.
  for (;;) {
    Frame F;
    FrameStatus S = readFrame(Fd, F);
    if (S != FrameStatus::Ok) {
      Out.Error = std::string("protocol: ") + frameStatusName(S);
      disconnect();
      return Out;
    }
    switch (F.Type) {
    case MsgType::Status: {
      PassStatus P;
      if (!decodePassStatus(F.Payload, P)) {
        Out.Error = "malformed status frame";
        disconnect();
        return Out;
      }
      Out.Passes.push_back(std::move(P));
      break;
    }
    case MsgType::Verdict:
      if (!decodeVerdict(F.Payload, Out.Result)) {
        Out.Error = "malformed verdict frame";
        disconnect();
        return Out;
      }
      Out.HaveVerdict = true;
      return Out;
    case MsgType::Error:
      Out.Error = F.Payload;
      // The server disconnects after Error; mirror it.
      disconnect();
      return Out;
    default:
      Out.Error = "unexpected frame type " +
                  std::to_string(static_cast<uint32_t>(F.Type));
      disconnect();
      return Out;
    }
  }
}

bool DaemonClient::ping() {
  if (Fd < 0)
    return false;
  if (!sendFrame(Fd, MsgType::Ping, ""))
    return false;
  Frame F;
  return readFrame(Fd, F) == FrameStatus::Ok && F.Type == MsgType::Pong;
}

bool DaemonClient::shutdownServer() {
  if (Fd < 0)
    return false;
  return sendFrame(Fd, MsgType::Shutdown, "");
}
