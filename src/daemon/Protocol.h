//===- daemon/Protocol.h - qccd wire protocol -------------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The qccd wire protocol: length-prefixed binary frames over a local
/// stream socket, reusing the persistent store's framing discipline
/// (store/Serialize.h primitives; magic + version + FNV-1a payload
/// checksum per message, exactly like a store entry header) so one
/// robustness argument covers both surfaces: every decoder is total on
/// hostile bytes, every count is sanity-checked against the bytes
/// remaining, and a violation is a protocol error — never a crash, an
/// over-read, or a silently misparsed job.
///
/// Frame layout (FrameHeaderSize = 32 bytes, little-endian):
///
///   offset  size  field
///        0     8  magic "QCCDWIRE"
///        8     4  protocol version (u32) = 1
///       12     4  message type (u32)
///       16     8  payload checksum: FNV-1a 64 over the payload bytes
///       24     8  payload size in bytes
///       32     -  payload (per-type record, store/Serialize conventions)
///
/// Conversation: a client sends Submit frames (one verification job
/// each); the server replies with zero or more Status frames (one per
/// compiled pass, carrying the pass name and wall micros) followed by
/// exactly one Verdict frame (the full batch::ProgramResult record,
/// proof blob stripped — proofs stay server-side in the store). Ping is
/// answered by Pong; Shutdown asks the daemon to stop accepting and
/// drain. Any malformed frame is answered by a best-effort Error frame
/// and a disconnect: after a framing violation the byte stream can no
/// longer be trusted to be in sync.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_DAEMON_PROTOCOL_H
#define QCC_DAEMON_PROTOCOL_H

#include "batch/Batch.h"
#include "store/Serialize.h"

#include <cstdint>
#include <string>

namespace qcc {
namespace daemon {

constexpr char WireMagic[8] = {'Q', 'C', 'C', 'D', 'W', 'I', 'R', 'E'};
constexpr uint32_t WireVersion = 1;
constexpr size_t FrameHeaderSize = 32;

/// Default ceiling on one frame's payload. Large enough for any corpus
/// source or verdict, small enough that a hostile length field cannot
/// make the server allocate unboundedly.
constexpr uint64_t DefaultMaxFrameBytes = 64ull << 20;

enum class MsgType : uint32_t {
  Submit = 1,   ///< C -> S: one verification job (JobRequest record).
  Status = 2,   ///< S -> C: one per-pass status line (PassStatus record).
  Verdict = 3,  ///< S -> C: final ProgramResult for the last Submit.
  Error = 4,    ///< S -> C: protocol or budget error (string payload).
  Ping = 5,     ///< C -> S: liveness probe (empty payload).
  Pong = 6,     ///< S -> C: Ping reply (empty payload).
  Shutdown = 7, ///< C -> S: drain and exit (empty payload).
  Busy = 8,     ///< S -> C: submit shed under overload (string reason).
                ///< The connection stays open; retry with backoff.
  Bye = 9,      ///< S -> C: clean close (string reason: drain, idle
                ///< timeout). Nothing further will be served here;
                ///< reconnect — possibly after the daemon restarts.
};

/// Why reading a frame off a descriptor stopped.
enum class FrameStatus : uint8_t {
  Ok,          ///< A well-formed frame was read.
  Eof,         ///< Clean end of stream on a frame boundary.
  Truncated,   ///< The peer vanished mid-frame.
  BadMagic,    ///< First 8 bytes are not "QCCDWIRE".
  BadVersion,  ///< Version skew; no compatibility negotiation at v1.
  Oversize,    ///< Declared payload exceeds the configured ceiling.
  BadChecksum, ///< Payload bytes do not match the declared FNV-1a.
  IoError,     ///< read() failed (including a mid-frame receive timeout).
  IdleTimeout, ///< Receive timeout before the frame's first byte: the
               ///< peer is idle, not torn — a clean Bye is appropriate.
};

/// Display name of \p S ("ok", "eof", "bad-magic", ...).
const char *frameStatusName(FrameStatus S);

/// One decoded frame.
struct Frame {
  MsgType Type = MsgType::Error;
  std::string Payload;
};

/// The complete wire image of one frame.
std::string encodeFrame(MsgType Type, const std::string &Payload);

/// Blocking read of exactly one frame from \p Fd (io::readFull under the
/// hood, so EINTR and short reads never truncate). On anything but Ok
/// the stream must be considered out of sync and closed.
FrameStatus readFrame(int Fd, Frame &Out,
                      uint64_t MaxPayload = DefaultMaxFrameBytes);

/// Sends one frame (MSG_NOSIGNAL). False when the peer is gone.
bool sendFrame(int Fd, MsgType Type, const std::string &Payload);

//===----------------------------------------------------------------------===//
// Message payload records
//===----------------------------------------------------------------------===//

/// A Submit payload: the job plus the client's requested budgets. The
/// server clamps every requested budget to its own per-client caps — a
/// request can tighten the server's discipline, never loosen it.
struct JobRequest {
  batch::BatchJob Job;
  bool CheckTheorem1 = true;
  /// Requested per-job wall-clock deadline (0 = server default).
  uint64_t DeadlineMillis = 0;
  /// Requested per-job soft memory budget (0 = server default).
  uint64_t MemoryBudgetBytes = 0;
};

std::string encodeJobRequest(const JobRequest &Req);
/// Total on hostile input; false on any structural violation.
bool decodeJobRequest(const std::string &Payload, JobRequest &Out);

/// A Status payload: one pipeline pass of the job just verified.
struct PassStatus {
  std::string Pass;
  uint64_t Micros = 0;
};

std::string encodePassStatus(const PassStatus &S);
bool decodePassStatus(const std::string &Payload, PassStatus &Out);

/// Verdict payloads are the store's ProgramResult record verbatim
/// (store::writeResult / store::readResult): one serializer, one set of
/// golden fixtures, one robustness proof for disk and wire.
std::string encodeVerdict(const batch::ProgramResult &R);
bool decodeVerdict(const std::string &Payload, batch::ProgramResult &Out);

} // namespace daemon
} // namespace qcc

#endif // QCC_DAEMON_PROTOCOL_H
