//===- daemon/Protocol.cpp - qccd wire protocol ---------------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "daemon/Protocol.h"

#include "store/Store.h"
#include "support/FailPoint.h"
#include "support/Hash.h"
#include "support/Io.h"

#include <cerrno>
#include <cstring>

using namespace qcc;
using namespace qcc::daemon;

const char *qcc::daemon::frameStatusName(FrameStatus S) {
  switch (S) {
  case FrameStatus::Ok:
    return "ok";
  case FrameStatus::Eof:
    return "eof";
  case FrameStatus::Truncated:
    return "truncated";
  case FrameStatus::BadMagic:
    return "bad-magic";
  case FrameStatus::BadVersion:
    return "bad-version";
  case FrameStatus::Oversize:
    return "oversize";
  case FrameStatus::BadChecksum:
    return "bad-checksum";
  case FrameStatus::IoError:
    return "io-error";
  case FrameStatus::IdleTimeout:
    return "idle-timeout";
  }
  return "?";
}

static uint64_t payloadChecksum(const std::string &Payload) {
  return Fnv1a64().bytes(Payload.data(), Payload.size()).digest();
}

std::string qcc::daemon::encodeFrame(MsgType Type, const std::string &Payload) {
  store::ByteWriter W;
  for (char C : WireMagic)
    W.u8(static_cast<uint8_t>(C));
  W.u32(WireVersion);
  W.u32(static_cast<uint32_t>(Type));
  W.u64(payloadChecksum(Payload));
  W.u64(Payload.size());
  std::string Out = W.take();
  Out.append(Payload);
  return Out;
}

FrameStatus qcc::daemon::readFrame(int Fd, Frame &Out, uint64_t MaxPayload) {
  // "daemon.read": injected faults surface exactly like a failing or
  // torn peer — IoError for Err, Truncated for Short.
  if (auto FA = failpoint::fire("daemon.read"))
    return FA.K == failpoint::Kind::Err ? FrameStatus::IoError
                                        : FrameStatus::Truncated;
  // The first byte is read by itself so a receive timeout *between*
  // frames (an idle peer) is distinguishable from one *inside* a frame
  // (a wedged or torn peer): idle earns a clean Bye, torn a disconnect.
  char Header[FrameHeaderSize];
  long Got = io::readFull(Fd, Header, 1);
  if (Got < 0)
    return errno == EAGAIN || errno == EWOULDBLOCK ? FrameStatus::IdleTimeout
                                                   : FrameStatus::IoError;
  if (Got == 0)
    return FrameStatus::Eof;
  Got = io::readFull(Fd, Header + 1, sizeof(Header) - 1);
  if (Got < 0)
    return FrameStatus::IoError;
  if (static_cast<size_t>(Got) != sizeof(Header) - 1)
    return FrameStatus::Truncated;

  // Validation order mirrors the store's entry loader: identity first
  // (magic), then compatibility (version), then resource safety (size,
  // before any allocation), then integrity (checksum, after the payload
  // is in memory). Each check has a distinct status so the fuzz slice can
  // assert the precise rejection, not just "something failed".
  store::ByteReader R(Header, sizeof(Header));
  bool MagicOk = true;
  for (char Expect : WireMagic) {
    uint8_t B = 0;
    R.u8(B);
    MagicOk &= B == static_cast<uint8_t>(Expect);
  }
  uint32_t Version = 0, RawType = 0;
  uint64_t Checksum = 0, Size = 0;
  if (!R.u32(Version) || !R.u32(RawType) || !R.u64(Checksum) || !R.u64(Size))
    return FrameStatus::Truncated; // Unreachable: header is fixed-size.
  if (!MagicOk)
    return FrameStatus::BadMagic;
  if (Version != WireVersion)
    return FrameStatus::BadVersion;
  if (Size > MaxPayload)
    return FrameStatus::Oversize;

  std::string Payload(static_cast<size_t>(Size), '\0');
  if (Size != 0) {
    Got = io::readFull(Fd, Payload.data(), Payload.size());
    if (Got < 0)
      return FrameStatus::IoError;
    if (static_cast<size_t>(Got) != Payload.size())
      return FrameStatus::Truncated;
  }
  if (payloadChecksum(Payload) != Checksum)
    return FrameStatus::BadChecksum;

  Out.Type = static_cast<MsgType>(RawType);
  Out.Payload = std::move(Payload);
  return FrameStatus::Ok;
}

bool qcc::daemon::sendFrame(int Fd, MsgType Type, const std::string &Payload) {
  std::string Wire = encodeFrame(Type, Payload);
  // "daemon.write": Short really puts half a frame on the wire — the
  // peer sees a truncated stream, exactly what a crash mid-send leaves.
  auto FA = failpoint::fire("daemon.write");
  if (FA.K == failpoint::Kind::Err)
    return false;
  size_t Len = FA.K == failpoint::Kind::Short ? Wire.size() / 2 : Wire.size();
  return io::sendFull(Fd, Wire.data(), Len) && Len == Wire.size();
}

//===----------------------------------------------------------------------===//
// Payload records
//===----------------------------------------------------------------------===//

std::string qcc::daemon::encodeJobRequest(const JobRequest &Req) {
  store::ByteWriter W;
  W.str(Req.Job.Id);
  W.str(Req.Job.Source);
  const driver::CompilerOptions &O = Req.Job.Options;
  W.u64(O.Defines.size());
  for (const auto &KV : O.Defines) {
    W.str(KV.first);
    W.u32(KV.second);
  }
  W.boolean(O.Optimize);
  W.boolean(O.Inline);
  W.boolean(O.TailCalls);
  W.boolean(O.ValidateTranslation);
  W.u64(O.ValidationFuel);
  W.boolean(O.AnalyzeBounds);
  store::writeContext(W, O.SeededSpecs);
  W.boolean(Req.CheckTheorem1);
  W.u64(Req.DeadlineMillis);
  W.u64(Req.MemoryBudgetBytes);
  return W.take();
}

bool qcc::daemon::decodeJobRequest(const std::string &Payload,
                                   JobRequest &Out) {
  store::ByteReader R(Payload);
  Out = JobRequest();
  if (!R.str(Out.Job.Id) || !R.str(Out.Job.Source))
    return false;
  driver::CompilerOptions &O = Out.Job.Options;
  uint64_t NumDefines = 0;
  if (!R.u64(NumDefines))
    return false;
  // Each define costs at least 12 bytes on the wire; a count that cannot
  // fit in the remaining payload is hostile.
  if (NumDefines > R.remaining() / 12)
    return false;
  for (uint64_t I = 0; I != NumDefines; ++I) {
    std::string Name;
    uint32_t Value = 0;
    if (!R.str(Name) || !R.u32(Value))
      return false;
    O.Defines[Name] = Value;
  }
  if (!R.boolean(O.Optimize) || !R.boolean(O.Inline) ||
      !R.boolean(O.TailCalls) || !R.boolean(O.ValidateTranslation) ||
      !R.u64(O.ValidationFuel) || !R.boolean(O.AnalyzeBounds))
    return false;
  if (!store::readContext(R, O.SeededSpecs))
    return false;
  if (!R.boolean(Out.CheckTheorem1) || !R.u64(Out.DeadlineMillis) ||
      !R.u64(Out.MemoryBudgetBytes))
    return false;
  return R.done();
}

std::string qcc::daemon::encodePassStatus(const PassStatus &S) {
  store::ByteWriter W;
  W.str(S.Pass);
  W.u64(S.Micros);
  return W.take();
}

bool qcc::daemon::decodePassStatus(const std::string &Payload,
                                   PassStatus &Out) {
  store::ByteReader R(Payload);
  Out = PassStatus();
  return R.str(Out.Pass) && R.u64(Out.Micros) && R.done();
}

std::string qcc::daemon::encodeVerdict(const batch::ProgramResult &R) {
  // The proof blob stays server-side: it is store freight, not client
  // information, and stripping it keeps verdict frames small. Clients who
  // need proofs re-checked ask the server (--store-verify).
  store::ByteWriter W;
  if (R.ProofBlob.empty()) {
    store::writeResult(W, R);
  } else {
    batch::ProgramResult Stripped = R;
    Stripped.ProofBlob.clear();
    store::writeResult(W, Stripped);
  }
  return W.take();
}

bool qcc::daemon::decodeVerdict(const std::string &Payload,
                                batch::ProgramResult &Out) {
  store::ByteReader R(Payload);
  Out = batch::ProgramResult();
  return store::readResult(R, Out) && R.done();
}
