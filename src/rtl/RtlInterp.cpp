//===- rtl/RtlInterp.cpp - RTL interpreter --------------------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "rtl/Rtl.h"

#include "events/SymbolTable.h"

#include <limits>
#include <map>
#include <unordered_map>

using namespace qcc;
using namespace qcc::rtl;

namespace {

struct Activation {
  const Function *F;
  std::vector<uint32_t> Regs;
  Node Pc;
  bool HasDest;
  Reg Dest;
};

class Machine {
public:
  Machine(const Program &P, TraceSink &Sink, uint64_t Fuel,
          const Supervisor *Sup)
      : P(P), Sink(Sink), Fuel(Fuel), Sup(Sup) {
    for (const GlobalVar &G : P.Globals) {
      std::vector<uint32_t> Cells = G.Init;
      Cells.resize(G.Size, 0);
      Globals[G.Name] = std::move(Cells);
    }
  }

  Outcome run() {
    const Function *Entry = P.findFunction(P.EntryPoint);
    if (!Entry)
      return Outcome::fails("entry point is not defined");
    Sink.onEvent(Event::call(sym(Entry->Name)));
    Current = {Entry, std::vector<uint32_t>(Entry->NumRegs, 0),
               Entry->Entry, false, 0};

    uint64_t Steps = 0;
    for (;;) {
      if (++Steps > Fuel)
        return Outcome::exhausted();
      if (Supervisor::shouldPoll(Steps, Sup))
        return Outcome::stopped(Sup->cause());
      const Instr &I = Current.F->Nodes[Current.Pc];
      std::string Fault;
      if (!step(I, Fault)) {
        if (Fault == "$halt")
          return Outcome::converges(static_cast<int32_t>(ReturnValue));
        return Outcome::fails(std::move(Fault));
      }
    }
  }

private:
  uint32_t &reg(Reg R) { return Current.Regs[R]; }

  SymId sym(const std::string &Name) {
    auto [It, New] = SymCache.try_emplace(&Name, 0);
    if (New)
      It->second = SymbolTable::global().intern(Name);
    return It->second;
  }

  bool binOp(BinOp Op, uint32_t A, uint32_t B, uint32_t &Out,
             std::string &Fault) {
    int32_t SA = static_cast<int32_t>(A), SB = static_cast<int32_t>(B);
    switch (Op) {
    case BinOp::Add: Out = A + B; return true;
    case BinOp::Sub: Out = A - B; return true;
    case BinOp::Mul: Out = A * B; return true;
    case BinOp::DivU:
      if (B == 0) { Fault = "unsigned division by zero"; return false; }
      Out = A / B;
      return true;
    case BinOp::ModU:
      if (B == 0) { Fault = "unsigned remainder by zero"; return false; }
      Out = A % B;
      return true;
    case BinOp::DivS:
      if (SB == 0) { Fault = "signed division by zero"; return false; }
      if (SA == std::numeric_limits<int32_t>::min() && SB == -1) {
        Fault = "signed division overflow";
        return false;
      }
      Out = static_cast<uint32_t>(SA / SB);
      return true;
    case BinOp::ModS:
      if (SB == 0) { Fault = "signed remainder by zero"; return false; }
      if (SA == std::numeric_limits<int32_t>::min() && SB == -1) {
        Fault = "signed remainder overflow";
        return false;
      }
      Out = static_cast<uint32_t>(SA % SB);
      return true;
    case BinOp::And: Out = A & B; return true;
    case BinOp::Or: Out = A | B; return true;
    case BinOp::Xor: Out = A ^ B; return true;
    case BinOp::Shl: Out = A << (B & 31); return true;
    case BinOp::ShrU: Out = A >> (B & 31); return true;
    case BinOp::ShrS: Out = static_cast<uint32_t>(SA >> (B & 31)); return true;
    case BinOp::Eq: Out = A == B; return true;
    case BinOp::Ne: Out = A != B; return true;
    case BinOp::LtU: Out = A < B; return true;
    case BinOp::LeU: Out = A <= B; return true;
    case BinOp::GtU: Out = A > B; return true;
    case BinOp::GeU: Out = A >= B; return true;
    case BinOp::LtS: Out = SA < SB; return true;
    case BinOp::LeS: Out = SA <= SB; return true;
    case BinOp::GtS: Out = SA > SB; return true;
    case BinOp::GeS: Out = SA >= SB; return true;
    }
    Fault = "bad binary op";
    return false;
  }

  /// Executes one instruction. Returns false with Fault set on traps; the
  /// pseudo-fault "$halt" signals normal program termination.
  bool step(const Instr &I, std::string &Fault) {
    switch (I.K) {
    case InstrKind::Nop:
      Current.Pc = I.Succ;
      return true;
    case InstrKind::Const:
      reg(I.Dst) = I.Imm;
      Current.Pc = I.Succ;
      return true;
    case InstrKind::Move:
      reg(I.Dst) = reg(I.Src1);
      Current.Pc = I.Succ;
      return true;
    case InstrKind::Unary: {
      uint32_t V = reg(I.Src1);
      switch (I.U) {
      case UnOp::Neg: reg(I.Dst) = 0u - V; break;
      case UnOp::BoolNot: reg(I.Dst) = V == 0 ? 1u : 0u; break;
      case UnOp::BitNot: reg(I.Dst) = ~V; break;
      }
      Current.Pc = I.Succ;
      return true;
    }
    case InstrKind::Binary: {
      uint32_t Out;
      if (!binOp(I.B, reg(I.Src1), reg(I.Src2), Out, Fault))
        return false;
      reg(I.Dst) = Out;
      Current.Pc = I.Succ;
      return true;
    }
    case InstrKind::GlobLoad: {
      auto It = Globals.find(I.Name);
      if (It == Globals.end()) {
        Fault = "unbound global '" + I.Name + "'";
        return false;
      }
      reg(I.Dst) = It->second[0];
      Current.Pc = I.Succ;
      return true;
    }
    case InstrKind::GlobStore: {
      auto It = Globals.find(I.Name);
      if (It == Globals.end()) {
        Fault = "unbound global '" + I.Name + "'";
        return false;
      }
      It->second[0] = reg(I.Src1);
      Current.Pc = I.Succ;
      return true;
    }
    case InstrKind::ArrayLoad: {
      auto It = Globals.find(I.Name);
      if (It == Globals.end()) {
        Fault = "unbound array '" + I.Name + "'";
        return false;
      }
      uint32_t Idx = reg(I.Src1);
      if (Idx >= It->second.size()) {
        Fault = "index out of bounds for '" + I.Name + "'";
        return false;
      }
      reg(I.Dst) = It->second[Idx];
      Current.Pc = I.Succ;
      return true;
    }
    case InstrKind::ArrayStore: {
      auto It = Globals.find(I.Name);
      if (It == Globals.end()) {
        Fault = "unbound array '" + I.Name + "'";
        return false;
      }
      uint32_t Idx = reg(I.Src1);
      if (Idx >= It->second.size()) {
        Fault = "index out of bounds for '" + I.Name + "'";
        return false;
      }
      It->second[Idx] = reg(I.Src2);
      Current.Pc = I.Succ;
      return true;
    }
    case InstrKind::Call: {
      std::vector<uint32_t> ArgValues;
      for (Reg A : I.Args)
        ArgValues.push_back(reg(A));
      if (const Function *Callee = P.findFunction(I.Name)) {
        Sink.onEvent(Event::call(sym(Callee->Name)));
        Activation Saved = std::move(Current);
        Saved.Pc = I.Succ; // Resume after the call.
        Saved.HasDest = I.HasDest;
        Saved.Dest = I.Dst;
        Stack.push_back(std::move(Saved));
        Current.F = Callee;
        Current.Regs.assign(Callee->NumRegs, 0);
        for (size_t J = 0; J < ArgValues.size() && J < Callee->NumParams;
             ++J)
          Current.Regs[J] = ArgValues[J];
        Current.Pc = Callee->Entry;
        return true;
      }
      std::vector<int32_t> IOArgs(ArgValues.begin(), ArgValues.end());
      Sink.onEvent(Event::external(
          sym(I.Name), SymbolTable::global().internArgs(IOArgs), 0));
      if (I.HasDest)
        reg(I.Dst) = 0;
      Current.Pc = I.Succ;
      return true;
    }
    case InstrKind::Cond:
      Current.Pc = reg(I.Src1) != 0 ? I.Succ : I.Succ2;
      return true;
    case InstrKind::Return: {
      uint32_t V = I.HasValue ? reg(I.Src1) : 0;
      Sink.onEvent(Event::ret(sym(Current.F->Name)));
      if (Stack.empty()) {
        ReturnValue = V;
        Fault = "$halt";
        return false;
      }
      Activation Caller = std::move(Stack.back());
      Stack.pop_back();
      Current = std::move(Caller);
      if (Current.HasDest)
        reg(Current.Dest) = V;
      return true;
    }
    }
    Fault = "bad instruction";
    return false;
  }

  const Program &P;
  TraceSink &Sink;
  uint64_t Fuel;
  const Supervisor *Sup;
  std::map<std::string, std::vector<uint32_t>> Globals;
  Activation Current{nullptr, {}, 0, false, 0};
  std::vector<Activation> Stack;
  std::unordered_map<const std::string *, SymId> SymCache;
  uint32_t ReturnValue = 0;
};

} // namespace

Behavior qcc::rtl::runProgram(const Program &P, uint64_t Fuel,
                              const Supervisor *Sup) {
  RecordingSink R;
  return runProgram(P, R, Fuel, Sup).intoBehavior(std::move(R.Events));
}

Outcome qcc::rtl::runProgram(const Program &P, TraceSink &Sink,
                             uint64_t Fuel, const Supervisor *Sup) {
  return Machine(P, Sink, Fuel, Sup).run();
}
