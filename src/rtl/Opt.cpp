//===- rtl/Opt.cpp - RTL optimization passes ------------------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "rtl/Opt.h"

#include "rtl/Liveness.h"

#include <limits>
#include <map>

using namespace qcc;
using namespace qcc::rtl;

//===----------------------------------------------------------------------===//
// Constant propagation
//===----------------------------------------------------------------------===//

namespace {

/// The constant lattice: Undef (unreached) < Const(c) < NotAConstant.
struct Lattice {
  enum class Kind : uint8_t { Undef, Const, NAC } K = Kind::Undef;
  uint32_t Value = 0;

  static Lattice undef() { return {}; }
  static Lattice constant(uint32_t V) {
    return {Kind::Const, V};
  }
  static Lattice nac() { return {Kind::NAC, 0}; }

  bool operator==(const Lattice &O) const {
    return K == O.K && (K != Kind::Const || Value == O.Value);
  }
};

Lattice meet(const Lattice &A, const Lattice &B) {
  if (A.K == Lattice::Kind::Undef)
    return B;
  if (B.K == Lattice::Kind::Undef)
    return A;
  if (A.K == Lattice::Kind::Const && B.K == Lattice::Kind::Const &&
      A.Value == B.Value)
    return A;
  return Lattice::nac();
}

using RegState = std::map<Reg, Lattice>;

Lattice lookup(const RegState &S, Reg R) {
  auto It = S.find(R);
  return It == S.end() ? Lattice::undef() : It->second;
}

/// Folds a binary op over constants; refuses to fold faulting cases so
/// traps are preserved (the optimizer must not erase undefined behavior).
std::optional<uint32_t> foldBinOp(BinOp Op, uint32_t A, uint32_t B) {
  int32_t SA = static_cast<int32_t>(A), SB = static_cast<int32_t>(B);
  switch (Op) {
  case BinOp::Add: return A + B;
  case BinOp::Sub: return A - B;
  case BinOp::Mul: return A * B;
  case BinOp::DivU:
    if (B == 0)
      return std::nullopt;
    return A / B;
  case BinOp::ModU:
    if (B == 0)
      return std::nullopt;
    return A % B;
  case BinOp::DivS:
    if (SB == 0 ||
        (SA == std::numeric_limits<int32_t>::min() && SB == -1))
      return std::nullopt;
    return static_cast<uint32_t>(SA / SB);
  case BinOp::ModS:
    if (SB == 0 ||
        (SA == std::numeric_limits<int32_t>::min() && SB == -1))
      return std::nullopt;
    return static_cast<uint32_t>(SA % SB);
  case BinOp::And: return A & B;
  case BinOp::Or: return A | B;
  case BinOp::Xor: return A ^ B;
  case BinOp::Shl: return A << (B & 31);
  case BinOp::ShrU: return A >> (B & 31);
  case BinOp::ShrS: return static_cast<uint32_t>(SA >> (B & 31));
  case BinOp::Eq: return A == B;
  case BinOp::Ne: return A != B;
  case BinOp::LtU: return A < B;
  case BinOp::LeU: return A <= B;
  case BinOp::GtU: return A > B;
  case BinOp::GeU: return A >= B;
  case BinOp::LtS: return SA < SB;
  case BinOp::LeS: return SA <= SB;
  case BinOp::GtS: return SA > SB;
  case BinOp::GeS: return SA >= SB;
  }
  return std::nullopt;
}

uint32_t foldUnOp(UnOp Op, uint32_t V) {
  switch (Op) {
  case UnOp::Neg: return 0u - V;
  case UnOp::BoolNot: return V == 0 ? 1u : 0u;
  case UnOp::BitNot: return ~V;
  }
  return 0;
}

/// The dataflow value of the instruction's destination given input state.
Lattice transfer(const Instr &I, const RegState &In) {
  switch (I.K) {
  case InstrKind::Const:
    return Lattice::constant(I.Imm);
  case InstrKind::Move:
    return lookup(In, I.Src1);
  case InstrKind::Unary: {
    Lattice V = lookup(In, I.Src1);
    if (V.K == Lattice::Kind::Const)
      return Lattice::constant(foldUnOp(I.U, V.Value));
    return V.K == Lattice::Kind::Undef ? Lattice::undef() : Lattice::nac();
  }
  case InstrKind::Binary: {
    Lattice A = lookup(In, I.Src1), B = lookup(In, I.Src2);
    if (A.K == Lattice::Kind::Const && B.K == Lattice::Kind::Const) {
      if (auto V = foldBinOp(I.B, A.Value, B.Value))
        return Lattice::constant(*V);
      return Lattice::nac(); // Would fault: never fold.
    }
    if (A.K == Lattice::Kind::Undef && B.K == Lattice::Kind::Undef)
      return Lattice::undef();
    return Lattice::nac();
  }
  default:
    return Lattice::nac(); // Loads and call results are unknown.
  }
}

} // namespace

unsigned qcc::rtl::constantPropagation(Function &F) {
  size_t N = F.Nodes.size();
  std::vector<RegState> In(N);
  std::vector<bool> Reached(N, false);

  // Parameters are unknown at entry.
  RegState EntryState;
  for (Reg R = 0; R != F.NumParams; ++R)
    EntryState[R] = Lattice::nac();

  // Forward worklist fixpoint.
  std::vector<Node> Work{F.Entry};
  In[F.Entry] = EntryState;
  Reached[F.Entry] = true;
  while (!Work.empty()) {
    Node NodeId = Work.back();
    Work.pop_back();
    const Instr &I = F.Nodes[NodeId];
    RegState Out = In[NodeId];
    if (auto D = instrDef(I))
      Out[*D] = transfer(I, In[NodeId]);
    for (Node S : F.successors(NodeId)) {
      RegState Merged = Reached[S] ? In[S] : Out;
      if (Reached[S])
        for (const auto &[R, V] : Out) {
          Lattice M = meet(lookup(In[S], R), V);
          Merged[R] = M;
        }
      // Registers present in In[S] but absent from Out stay (absent means
      // Undef in Out, and meet(x, Undef) = x).
      if (!Reached[S] || !(Merged == In[S])) {
        In[S] = std::move(Merged);
        Reached[S] = true;
        Work.push_back(S);
      }
    }
  }

  // Rewrite.
  unsigned Rewritten = 0;
  for (Node NodeId = 0; NodeId != N; ++NodeId) {
    if (!Reached[NodeId])
      continue;
    Instr &I = F.Nodes[NodeId];
    switch (I.K) {
    case InstrKind::Move:
    case InstrKind::Unary:
    case InstrKind::Binary: {
      Lattice V = transfer(I, In[NodeId]);
      if (V.K == Lattice::Kind::Const) {
        Instr NewI;
        NewI.K = InstrKind::Const;
        NewI.Dst = I.Dst;
        NewI.Imm = V.Value;
        NewI.Succ = I.Succ;
        I = std::move(NewI);
        ++Rewritten;
      }
      break;
    }
    case InstrKind::Cond: {
      Lattice C = lookup(In[NodeId], I.Src1);
      if (C.K == Lattice::Kind::Const) {
        Node Taken = C.Value != 0 ? I.Succ : I.Succ2;
        Instr NewI;
        NewI.K = InstrKind::Nop;
        NewI.Succ = Taken;
        I = std::move(NewI);
        ++Rewritten;
      }
      break;
    }
    default:
      break;
    }
  }
  return Rewritten;
}

//===----------------------------------------------------------------------===//
// Dead-code elimination
//===----------------------------------------------------------------------===//

unsigned qcc::rtl::deadCodeElimination(Function &F) {
  unsigned Removed = 0;
  for (;;) {
    LivenessInfo L = computeLiveness(F);
    unsigned RoundRemoved = 0;
    for (Node NodeId = 0; NodeId != F.Nodes.size(); ++NodeId) {
      Instr &I = F.Nodes[NodeId];
      auto D = instrDef(I);
      if (!D || !instrIsPure(I))
        continue;
      if (L.LiveOut[NodeId].count(*D))
        continue;
      Instr NewI;
      NewI.K = InstrKind::Nop;
      NewI.Succ = I.Succ;
      I = std::move(NewI);
      ++RoundRemoved;
    }
    Removed += RoundRemoved;
    if (RoundRemoved == 0)
      return Removed;
  }
}

//===----------------------------------------------------------------------===//
// Control-flow cleanup
//===----------------------------------------------------------------------===//

void qcc::rtl::cleanupControlFlow(Function &F) {
  size_t N = F.Nodes.size();

  // Resolve Nop chains; cycles of Nops (empty infinite loops) keep one
  // representative to preserve divergence.
  std::vector<Node> Resolved(N, NoNode);
  auto Resolve = [&](Node Start) {
    if (Resolved[Start] != NoNode)
      return Resolved[Start];
    std::vector<Node> Path;
    Node Cur = Start;
    std::set<Node> OnPath;
    while (Cur != NoNode && F.Nodes[Cur].K == InstrKind::Nop &&
           Resolved[Cur] == NoNode && !OnPath.count(Cur)) {
      Path.push_back(Cur);
      OnPath.insert(Cur);
      Cur = F.Nodes[Cur].Succ;
    }
    Node Target;
    if (Cur == NoNode) {
      Target = Start; // Malformed; keep as is.
    } else if (F.Nodes[Cur].K == InstrKind::Nop && Resolved[Cur] == NoNode) {
      Target = Cur; // A Nop cycle: point at the cycle entry.
    } else if (F.Nodes[Cur].K == InstrKind::Nop) {
      Target = Resolved[Cur];
    } else {
      Target = Cur;
    }
    for (Node P : Path)
      Resolved[P] = Target;
    Resolved[Start] = Target; // Non-Nop starts resolve to themselves.
    return Target;
  };

  for (Node I = 0; I != N; ++I)
    Resolve(I);
  auto Redirect = [&](Node S) { return S == NoNode ? NoNode : Resolved[S]; };
  for (Node I = 0; I != N; ++I) {
    F.Nodes[I].Succ = Redirect(F.Nodes[I].Succ);
    if (F.Nodes[I].K == InstrKind::Cond)
      F.Nodes[I].Succ2 = Redirect(F.Nodes[I].Succ2);
  }
  F.Entry = Redirect(F.Entry);

  // Drop unreachable nodes and renumber.
  std::vector<bool> Reached(N, false);
  std::vector<Node> Work{F.Entry};
  Reached[F.Entry] = true;
  while (!Work.empty()) {
    Node I = Work.back();
    Work.pop_back();
    for (Node S : F.successors(I))
      if (S != NoNode && !Reached[S]) {
        Reached[S] = true;
        Work.push_back(S);
      }
  }
  std::vector<Node> NewIndex(N, NoNode);
  std::vector<Instr> NewNodes;
  for (Node I = 0; I != N; ++I) {
    if (!Reached[I])
      continue;
    NewIndex[I] = static_cast<Node>(NewNodes.size());
    NewNodes.push_back(std::move(F.Nodes[I]));
  }
  for (Instr &I : NewNodes) {
    if (I.Succ != NoNode)
      I.Succ = NewIndex[I.Succ];
    if (I.K == InstrKind::Cond && I.Succ2 != NoNode)
      I.Succ2 = NewIndex[I.Succ2];
  }
  F.Nodes = std::move(NewNodes);
  F.Entry = NewIndex[F.Entry];
}

void qcc::rtl::optimizeProgram(Program &P) {
  for (Function &F : P.Functions) {
    for (int Round = 0; Round != 2; ++Round) {
      constantPropagation(F);
      deadCodeElimination(F);
      cleanupControlFlow(F);
    }
  }
}
