//===- rtl/Inline.cpp - Function inlining ---------------------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "rtl/Inline.h"

#include <cassert>
#include <map>
#include <set>

using namespace qcc;
using namespace qcc::rtl;

namespace {

/// Call sites of internal functions in \p F.
std::set<std::string> internalCallees(const Function &F, const Program &P) {
  std::set<std::string> Out;
  for (const Instr &I : F.Nodes)
    if (I.K == InstrKind::Call && P.findFunction(I.Name))
      Out.insert(I.Name);
  return Out;
}

/// True if \p Name can reach itself through internal calls.
bool isRecursive(const Program &P, const std::string &Name) {
  std::set<std::string> Seen;
  std::vector<std::string> Work;
  const Function *F = P.findFunction(Name);
  if (!F)
    return false;
  for (const std::string &C : internalCallees(*F, P))
    Work.push_back(C);
  while (!Work.empty()) {
    std::string Cur = Work.back();
    Work.pop_back();
    if (Cur == Name)
      return true;
    if (!Seen.insert(Cur).second)
      continue;
    if (const Function *G = P.findFunction(Cur))
      for (const std::string &C : internalCallees(*G, P))
        Work.push_back(C);
  }
  return false;
}

/// Splices a copy of \p Callee into \p Caller, replacing the call at node
/// \p CallNode. Registers and node indices of the copy are offset; the
/// callee's parameter registers receive the argument registers through
/// moves, and every Return becomes a move-to-dest plus a jump to the
/// call's continuation.
void inlineOneSite(Function &Caller, Node CallNode, const Function &Callee) {
  Instr Call = Caller.Nodes[CallNode]; // Copy: we overwrite the node.
  assert(Call.K == InstrKind::Call && "not a call site");

  Reg RegBase = Caller.NumRegs;
  Node NodeBase = static_cast<Node>(Caller.Nodes.size());
  Caller.NumRegs += Callee.NumRegs;

  // The callee copy: registers and successors shifted.
  for (const Instr &I : Callee.Nodes) {
    Instr Copy = I;
    auto Shift = [RegBase](Reg &R) { R += RegBase; };
    switch (Copy.K) {
    case InstrKind::Nop:
      break;
    case InstrKind::Const:
      Shift(Copy.Dst);
      break;
    case InstrKind::Move:
    case InstrKind::Unary:
      Shift(Copy.Dst);
      Shift(Copy.Src1);
      break;
    case InstrKind::Binary:
      Shift(Copy.Dst);
      Shift(Copy.Src1);
      Shift(Copy.Src2);
      break;
    case InstrKind::GlobLoad:
      Shift(Copy.Dst);
      break;
    case InstrKind::GlobStore:
      Shift(Copy.Src1);
      break;
    case InstrKind::ArrayLoad:
      Shift(Copy.Dst);
      Shift(Copy.Src1);
      break;
    case InstrKind::ArrayStore:
      Shift(Copy.Src1);
      Shift(Copy.Src2);
      break;
    case InstrKind::Call:
      for (Reg &A : Copy.Args)
        Shift(A);
      if (Copy.HasDest)
        Shift(Copy.Dst);
      break;
    case InstrKind::Cond:
      Shift(Copy.Src1);
      break;
    case InstrKind::Return:
      if (Copy.HasValue)
        Shift(Copy.Src1);
      break;
    }
    if (Copy.K == InstrKind::Return) {
      // return [r]  ~>  [dest = r;] goto continuation.
      Instr Bridge;
      if (Call.HasDest && Copy.HasValue) {
        Bridge.K = InstrKind::Move;
        Bridge.Dst = Call.Dst;
        Bridge.Src1 = Copy.Src1;
      } else if (Call.HasDest) {
        // Void callee result used: defined-zero, matching the
        // interpreters' fall-through convention.
        Bridge.K = InstrKind::Const;
        Bridge.Dst = Call.Dst;
        Bridge.Imm = 0;
      } else {
        Bridge.K = InstrKind::Nop;
      }
      Bridge.Succ = Call.Succ;
      Copy = std::move(Bridge);
    } else {
      if (Copy.Succ != NoNode)
        Copy.Succ += NodeBase;
      if (Copy.K == InstrKind::Cond && Copy.Succ2 != NoNode)
        Copy.Succ2 += NodeBase;
    }
    Caller.Nodes.push_back(std::move(Copy));
  }

  // Parameter moves: arg registers into the copy's parameter registers,
  // then jump to the copy's entry. The chain replaces the call node.
  Node Next = Callee.Entry + NodeBase;
  // Build the moves backward so each node knows its successor.
  for (size_t A = Call.Args.size(); A-- > 0;) {
    if (A >= Callee.NumParams)
      continue;
    Instr MoveI;
    MoveI.K = InstrKind::Move;
    MoveI.Dst = RegBase + static_cast<Reg>(A);
    MoveI.Src1 = Call.Args[A];
    MoveI.Succ = Next;
    Caller.Nodes.push_back(std::move(MoveI));
    Next = static_cast<Node>(Caller.Nodes.size() - 1);
  }
  // Parameters beyond the provided arguments (cannot happen on verified
  // input) and missing params default to 0 via fresh Consts.
  for (Reg Param = static_cast<Reg>(Call.Args.size());
       Param < Callee.NumParams; ++Param) {
    Instr ConstI;
    ConstI.K = InstrKind::Const;
    ConstI.Dst = RegBase + Param;
    ConstI.Imm = 0;
    ConstI.Succ = Next;
    Caller.Nodes.push_back(std::move(ConstI));
    Next = static_cast<Node>(Caller.Nodes.size() - 1);
  }

  Instr Entry;
  Entry.K = InstrKind::Nop;
  Entry.Succ = Next;
  Caller.Nodes[CallNode] = std::move(Entry);
}

} // namespace

unsigned qcc::rtl::inlineFunctions(Program &P, unsigned Threshold) {
  // Candidates: small, non-recursive, internal.
  std::set<std::string> Candidates;
  for (const Function &F : P.Functions)
    if (F.Nodes.size() <= Threshold && !isRecursive(P, F.Name))
      Candidates.insert(F.Name);

  unsigned Inlined = 0;
  for (Function &Caller : P.Functions) {
    // One round per caller: sites present before splicing (the spliced
    // copy may itself contain calls; leaving them for a later compile
    // keeps growth bounded).
    size_t OriginalSize = Caller.Nodes.size();
    for (Node N = 0; N < OriginalSize; ++N) {
      const Instr &I = Caller.Nodes[N];
      if (I.K != InstrKind::Call || !Candidates.count(I.Name) ||
          I.Name == Caller.Name)
        continue;
      const Function *Callee = P.findFunction(I.Name);
      inlineOneSite(Caller, N, *Callee);
      ++Inlined;
    }
  }
  return Inlined;
}
