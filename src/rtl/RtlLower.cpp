//===- rtl/RtlLower.cpp - Cminor to RTL lowering --------------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured Cminor statements become an explicit control-flow graph.
/// Translation proceeds backward: every construct is translated against
/// the node that follows it, so successors are always known. Loops use a
/// placeholder node patched after their body is translated; `exit n`
/// jumps to the recorded continuation of the (n+1)-th enclosing block.
///
//===----------------------------------------------------------------------===//

#include "rtl/Rtl.h"

#include <cassert>

using namespace qcc;
using namespace qcc::rtl;
namespace cm = qcc::cminor;

namespace {

class FunctionLowering {
public:
  explicit FunctionLowering(const cm::Function &F) : Source(F) {
    NextReg = F.NumTemps; // Temps map to like-numbered registers.
  }

  Function run() {
    Function Out;
    Out.Name = Source.Name;
    Out.NumParams = Source.NumParams;
    Out.ReturnsValue = Source.ReturnsValue;
    Out.Loc = Source.Loc;

    // The fall-off-the-end continuation returns (void functions only; the
    // frontend guarantees value functions end in an explicit return).
    Node FallOff = append([] {
      Instr I;
      I.K = InstrKind::Return;
      I.HasValue = false;
      return I;
    }());
    Node Entry = transStmt(*Source.Body, FallOff);
    Out.Entry = Entry;
    Out.Nodes = std::move(Nodes);
    Out.NumRegs = NextReg;
    return Out;
  }

private:
  Node append(Instr I) {
    Nodes.push_back(std::move(I));
    return static_cast<Node>(Nodes.size() - 1);
  }

  Reg freshReg() { return NextReg++; }

  /// Translates \p E into instructions computing it into \p Dst, placed
  /// before \p Follow. Returns the entry node of the computation.
  Node transExpr(const cm::Expr &E, Reg Dst, Node Follow) {
    switch (E.Kind) {
    case cm::ExprKind::Const: {
      Instr I;
      I.K = InstrKind::Const;
      I.Dst = Dst;
      I.Imm = E.IntValue;
      I.Succ = Follow;
      return append(std::move(I));
    }
    case cm::ExprKind::Temp: {
      Instr I;
      I.K = InstrKind::Move;
      I.Dst = Dst;
      I.Src1 = E.TempIndex;
      I.Succ = Follow;
      return append(std::move(I));
    }
    case cm::ExprKind::GlobalLoad: {
      Instr I;
      I.K = InstrKind::GlobLoad;
      I.Dst = Dst;
      I.Name = E.Name;
      I.Succ = Follow;
      return append(std::move(I));
    }
    case cm::ExprKind::ArrayLoad: {
      Reg Idx = freshReg();
      Instr I;
      I.K = InstrKind::ArrayLoad;
      I.Dst = Dst;
      I.Src1 = Idx;
      I.Name = E.Name;
      I.Succ = Follow;
      Node LoadN = append(std::move(I));
      return transExpr(*E.Lhs, Idx, LoadN);
    }
    case cm::ExprKind::Unary: {
      Reg Src = freshReg();
      Instr I;
      I.K = InstrKind::Unary;
      I.Dst = Dst;
      I.Src1 = Src;
      I.U = E.UOp;
      I.Succ = Follow;
      Node OpN = append(std::move(I));
      return transExpr(*E.Lhs, Src, OpN);
    }
    case cm::ExprKind::Binary: {
      Reg L = freshReg(), R = freshReg();
      Instr I;
      I.K = InstrKind::Binary;
      I.Dst = Dst;
      I.Src1 = L;
      I.Src2 = R;
      I.B = E.BOp;
      I.Succ = Follow;
      Node OpN = append(std::move(I));
      Node RhsN = transExpr(*E.Rhs, R, OpN);
      return transExpr(*E.Lhs, L, RhsN);
    }
    }
    // Internal invariant: the switch above is ExprKind-exhaustive. The
    // pass-through fallback keeps NDEBUG builds safe.
    assert(false && "bad expression kind");
    return Follow;
  }

  Node transStmt(const cm::Stmt &S, Node Follow) {
    switch (S.Kind) {
    case cm::StmtKind::Skip:
      return Follow;

    case cm::StmtKind::Assign:
      return transExpr(*S.Value, S.TempIndex, Follow);

    case cm::StmtKind::GlobStore: {
      Reg V = freshReg();
      Instr I;
      I.K = InstrKind::GlobStore;
      I.Src1 = V;
      I.Name = S.Name;
      I.Succ = Follow;
      Node StoreN = append(std::move(I));
      return transExpr(*S.Value, V, StoreN);
    }

    case cm::StmtKind::ArrayStore: {
      Reg Idx = freshReg(), V = freshReg();
      Instr I;
      I.K = InstrKind::ArrayStore;
      I.Src1 = Idx;
      I.Src2 = V;
      I.Name = S.Name;
      I.Succ = Follow;
      Node StoreN = append(std::move(I));
      // Cminor evaluates the value first, then the index.
      Node IdxN = transExpr(*S.Addr, Idx, StoreN);
      return transExpr(*S.Value, V, IdxN);
    }

    case cm::StmtKind::Call: {
      std::vector<Reg> ArgRegs;
      for (size_t I = 0; I != S.Args.size(); ++I)
        ArgRegs.push_back(freshReg());
      Instr I;
      I.K = InstrKind::Call;
      I.Name = S.Name;
      I.Args = ArgRegs;
      I.HasDest = S.HasDest;
      I.Dst = S.TempIndex;
      I.Succ = Follow;
      Node CallN = append(std::move(I));
      // Arguments evaluate left to right; build the chain backward.
      Node Next = CallN;
      for (size_t J = S.Args.size(); J-- > 0;)
        Next = transExpr(*S.Args[J], ArgRegs[J], Next);
      return Next;
    }

    case cm::StmtKind::Seq: {
      Node SecondN = transStmt(*S.Second, Follow);
      return transStmt(*S.First, SecondN);
    }

    case cm::StmtKind::If: {
      Node ThenN = transStmt(*S.First, Follow);
      Node ElseN = transStmt(*S.Second, Follow);
      Reg C = freshReg();
      Instr I;
      I.K = InstrKind::Cond;
      I.Src1 = C;
      I.Succ = ThenN;
      I.Succ2 = ElseN;
      Node CondN = append(std::move(I));
      return transExpr(*S.Value, C, CondN);
    }

    case cm::StmtKind::Loop: {
      // Placeholder header patched to the body entry so the back edge has
      // somewhere to point before the body exists.
      Node Header = append([] {
        Instr I;
        I.K = InstrKind::Nop;
        return I;
      }());
      Node BodyN = transStmt(*S.First, Header);
      Nodes[Header].Succ = BodyN;
      return Header;
    }

    case cm::StmtKind::Block: {
      BlockExits.push_back(Follow);
      Node BodyN = transStmt(*S.First, Follow);
      BlockExits.pop_back();
      return BodyN;
    }

    case cm::StmtKind::Exit: {
      // Internal invariant, not source-reachable: the driver runs the
      // Cminor verifier before this lowering, and it rejects exit depths
      // that escape their enclosing blocks (cminor/Verify.cpp).
      assert(S.ExitDepth < BlockExits.size() && "exit without block");
      Node Target = BlockExits[BlockExits.size() - 1 - S.ExitDepth];
      Instr I;
      I.K = InstrKind::Nop;
      I.Succ = Target;
      return append(std::move(I));
    }

    case cm::StmtKind::Return: {
      Instr I;
      I.K = InstrKind::Return;
      I.HasValue = S.HasValue;
      if (!S.HasValue)
        return append(std::move(I));
      Reg V = freshReg();
      I.Src1 = V;
      Node RetN = append(std::move(I));
      return transExpr(*S.Value, V, RetN);
    }
    }
    // Internal invariant: the switch above is StmtKind-exhaustive. The
    // pass-through fallback keeps NDEBUG builds safe.
    assert(false && "bad statement kind");
    return Follow;
  }

  const cm::Function &Source;
  std::vector<Instr> Nodes;
  std::vector<Node> BlockExits;
  Reg NextReg;
};

} // namespace

Program qcc::rtl::lowerFromCminor(const cm::Program &P) {
  Program Out;
  Out.Globals = P.Globals;
  Out.Externals = P.Externals;
  Out.EntryPoint = P.EntryPoint;
  for (const cm::Function &F : P.Functions)
    Out.Functions.push_back(FunctionLowering(F).run());
  return Out;
}
