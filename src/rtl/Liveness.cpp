//===- rtl/Liveness.cpp - Liveness dataflow analysis ----------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "rtl/Liveness.h"

using namespace qcc;
using namespace qcc::rtl;

std::vector<Reg> qcc::rtl::instrUses(const Instr &I) {
  switch (I.K) {
  case InstrKind::Nop:
  case InstrKind::Const:
  case InstrKind::GlobLoad:
    return {};
  case InstrKind::Move:
  case InstrKind::Unary:
  case InstrKind::GlobStore:
  case InstrKind::ArrayLoad:
  case InstrKind::Cond:
    return {I.Src1};
  case InstrKind::Binary:
  case InstrKind::ArrayStore:
    return {I.Src1, I.Src2};
  case InstrKind::Call:
    return I.Args;
  case InstrKind::Return:
    return I.HasValue ? std::vector<Reg>{I.Src1} : std::vector<Reg>{};
  }
  return {};
}

std::optional<Reg> qcc::rtl::instrDef(const Instr &I) {
  switch (I.K) {
  case InstrKind::Const:
  case InstrKind::Move:
  case InstrKind::Unary:
  case InstrKind::Binary:
  case InstrKind::GlobLoad:
  case InstrKind::ArrayLoad:
    return I.Dst;
  case InstrKind::Call:
    return I.HasDest ? std::optional<Reg>(I.Dst) : std::nullopt;
  default:
    return std::nullopt;
  }
}

bool qcc::rtl::instrIsPure(const Instr &I) {
  switch (I.K) {
  case InstrKind::Const:
  case InstrKind::Move:
  case InstrKind::Unary:
  case InstrKind::GlobLoad:
    return true;
  case InstrKind::Binary:
    // Division and remainder can fault; their removal would erase a trap.
    switch (I.B) {
    case BinOp::DivS:
    case BinOp::DivU:
    case BinOp::ModS:
    case BinOp::ModU:
      return false;
    default:
      return true;
    }
  default:
    // Array accesses can fault; stores, calls and control flow have
    // effects.
    return false;
  }
}

LivenessInfo qcc::rtl::computeLiveness(const Function &F) {
  size_t N = F.Nodes.size();
  LivenessInfo Info;
  Info.LiveIn.resize(N);
  Info.LiveOut.resize(N);

  // Predecessor lists for a fast backward fixpoint.
  std::vector<std::vector<Node>> Preds(N);
  for (Node I = 0; I != N; ++I)
    for (Node S : F.successors(I))
      Preds[S].push_back(I);

  // Worklist initialized with all nodes.
  std::vector<Node> Work;
  std::vector<bool> InWork(N, true);
  for (Node I = 0; I != N; ++I)
    Work.push_back(I);

  while (!Work.empty()) {
    Node I = Work.back();
    Work.pop_back();
    InWork[I] = false;

    std::set<Reg> Out;
    for (Node S : F.successors(I))
      Out.insert(Info.LiveIn[S].begin(), Info.LiveIn[S].end());

    std::set<Reg> In = Out;
    if (auto D = instrDef(F.Nodes[I]))
      In.erase(*D);
    for (Reg U : instrUses(F.Nodes[I]))
      In.insert(U);

    bool Changed = Out != Info.LiveOut[I] || In != Info.LiveIn[I];
    Info.LiveOut[I] = std::move(Out);
    Info.LiveIn[I] = std::move(In);
    if (Changed)
      for (Node Pred : Preds[I])
        if (!InWork[Pred]) {
          InWork[Pred] = true;
          Work.push_back(Pred);
        }
  }
  return Info;
}
