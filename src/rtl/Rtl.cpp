//===- rtl/Rtl.cpp - Register transfer language ---------------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "rtl/Rtl.h"

using namespace qcc;
using namespace qcc::rtl;

std::string Instr::str() const {
  auto R = [](Reg V) { return "r" + std::to_string(V); };
  auto N = [](Node V) {
    return V == NoNode ? std::string("-") : std::to_string(V);
  };
  switch (K) {
  case InstrKind::Nop:
    return "nop -> " + N(Succ);
  case InstrKind::Const:
    return R(Dst) + " = " + std::to_string(Imm) + " -> " + N(Succ);
  case InstrKind::Move:
    return R(Dst) + " = " + R(Src1) + " -> " + N(Succ);
  case InstrKind::Unary: {
    const char *Sp = U == UnOp::Neg ? "-" : U == UnOp::BoolNot ? "!" : "~";
    return R(Dst) + " = " + Sp + R(Src1) + " -> " + N(Succ);
  }
  case InstrKind::Binary:
    return R(Dst) + " = " + R(Src1) + " " + clight::binOpSpelling(B) + " " +
           R(Src2) + " -> " + N(Succ);
  case InstrKind::GlobLoad:
    return R(Dst) + " = [" + Name + "] -> " + N(Succ);
  case InstrKind::GlobStore:
    return "[" + Name + "] = " + R(Src1) + " -> " + N(Succ);
  case InstrKind::ArrayLoad:
    return R(Dst) + " = " + Name + "[" + R(Src1) + "] -> " + N(Succ);
  case InstrKind::ArrayStore:
    return Name + "[" + R(Src1) + "] = " + R(Src2) + " -> " + N(Succ);
  case InstrKind::Call: {
    std::string Out = HasDest ? R(Dst) + " = " : "";
    Out += Name + "(";
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += R(Args[I]);
    }
    return Out + ") -> " + N(Succ);
  }
  case InstrKind::Cond:
    return "if " + R(Src1) + " goto " + N(Succ) + " else " + N(Succ2);
  case InstrKind::Return:
    return HasValue ? "return " + R(Src1) : "return";
  }
  return "<bad instr>";
}

std::vector<Node> Function::successors(Node N) const {
  const Instr &I = Nodes[N];
  switch (I.K) {
  case InstrKind::Return:
    return {};
  case InstrKind::Cond:
    return {I.Succ, I.Succ2};
  default:
    return {I.Succ};
  }
}

const Function *Program::findFunction(const std::string &Name) const {
  for (const Function &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const GlobalVar *Program::findGlobal(const std::string &Name) const {
  for (const GlobalVar &G : Globals)
    if (G.Name == Name)
      return &G;
  return nullptr;
}

const ExternalDecl *Program::findExternal(const std::string &Name) const {
  for (const ExternalDecl &E : Externals)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

std::string Program::str() const {
  std::string Out;
  for (const Function &F : Functions) {
    Out += "function " + F.Name + " (entry " + std::to_string(F.Entry) +
           ", params " + std::to_string(F.NumParams) + ", regs " +
           std::to_string(F.NumRegs) + ")\n";
    for (Node N = 0; N != F.Nodes.size(); ++N)
      Out += "  " + std::to_string(N) + ": " + F.Nodes[N].str() + "\n";
  }
  return Out;
}
