//===- rtl/Liveness.h - Liveness dataflow analysis --------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward liveness analysis on RTL, shared by dead-code elimination and
/// the register allocator.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_RTL_LIVENESS_H
#define QCC_RTL_LIVENESS_H

#include "rtl/Rtl.h"

#include <optional>
#include <set>
#include <vector>

namespace qcc {
namespace rtl {

/// Registers read by \p I.
std::vector<Reg> instrUses(const Instr &I);

/// The register written by \p I, if any.
std::optional<Reg> instrDef(const Instr &I);

/// True if \p I has no side effect beyond writing its destination —
/// removable when the destination is dead. Faulting operations (division,
/// array accesses) and stores/calls are not pure.
bool instrIsPure(const Instr &I);

/// Per-node live-in and live-out register sets.
struct LivenessInfo {
  std::vector<std::set<Reg>> LiveIn;
  std::vector<std::set<Reg>> LiveOut;
};

/// Runs the backward fixpoint.
LivenessInfo computeLiveness(const Function &F);

} // namespace rtl
} // namespace qcc

#endif // QCC_RTL_LIVENESS_H
