//===- rtl/Opt.h - RTL optimization passes ----------------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RTL optimization pipeline: sparse conditional constant propagation
/// (without the conditional part — all edges are assumed executable, which
/// only loses precision), dead-code elimination, branch folding, and
/// control-flow cleanup. Like the paper's supported CompCert passes, each
/// preserves call/return events exactly; the driver's translation
/// validation replays optimized and unoptimized RTL to certify each run.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_RTL_OPT_H
#define QCC_RTL_OPT_H

#include "rtl/Rtl.h"

namespace qcc {
namespace rtl {

/// Forward constant propagation and folding; folds constant conditions
/// into unconditional edges. Returns the number of rewritten
/// instructions.
unsigned constantPropagation(Function &F);

/// Removes pure instructions whose destination is dead. Returns the
/// number of removed (nop-ified) instructions.
unsigned deadCodeElimination(Function &F);

/// Compresses Nop chains and drops unreachable nodes, renumbering the
/// graph. Run last; invalidates node numbers.
void cleanupControlFlow(Function &F);

/// The standard pipeline over a whole program:
/// constprop -> dce -> cleanup, iterated twice.
void optimizeProgram(Program &P);

} // namespace rtl
} // namespace qcc

#endif // QCC_RTL_OPT_H
