//===- rtl/Rtl.h - Register transfer language -------------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RTL: a control-flow graph of three-address instructions over unlimited
/// virtual registers, mirroring CompCert's RTL. This is where the
/// optimization passes run (constant propagation, dead-code elimination,
/// branch folding) and the input to register allocation.
///
/// Function parameters arrive in virtual registers 0 .. NumParams-1.
/// Instructions are graph nodes with explicit successors.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_RTL_RTL_H
#define QCC_RTL_RTL_H

#include "cminor/Cminor.h"
#include "events/Trace.h"
#include "events/TraceSink.h"

#include <cstdint>
#include <string>
#include <vector>

namespace qcc {
namespace rtl {

using clight::BinOp;
using clight::UnOp;
using clight::ExternalDecl;
using clight::GlobalVar;

using Reg = uint32_t;
using Node = uint32_t;

/// A sentinel successor for instructions that leave the function.
inline constexpr Node NoNode = 0xffffffffu;

enum class InstrKind : uint8_t {
  Nop,        ///< Fall through to Succ.
  Const,      ///< Dst = Imm.
  Move,       ///< Dst = Src1.
  Unary,      ///< Dst = U(Src1).
  Binary,     ///< Dst = Src1 B Src2.
  GlobLoad,   ///< Dst = global Name.
  GlobStore,  ///< global Name = Src1.
  ArrayLoad,  ///< Dst = Name[Src1].
  ArrayStore, ///< Name[Src1] = Src2.
  Call,       ///< [Dst =] Name(Args).
  Cond,       ///< if Src1 != 0 goto Succ else Succ2.
  Return      ///< return [Src1].
};

/// One RTL instruction (a CFG node).
struct Instr {
  InstrKind K = InstrKind::Nop;
  Reg Dst = 0;
  Reg Src1 = 0;
  Reg Src2 = 0;
  uint32_t Imm = 0;
  UnOp U = UnOp::Neg;
  BinOp B = BinOp::Add;
  std::string Name;         ///< Global / array / callee.
  std::vector<Reg> Args;    ///< Call.
  bool HasDest = false;     ///< Call.
  bool HasValue = false;    ///< Return.
  Node Succ = NoNode;
  Node Succ2 = NoNode;      ///< Cond false edge.

  std::string str() const;
};

struct Function {
  std::string Name;
  uint32_t NumParams = 0;
  uint32_t NumRegs = 0;
  bool ReturnsValue = false;
  Node Entry = 0;
  std::vector<Instr> Nodes;
  SourceLoc Loc;

  /// The successors of node \p N (0, 1 or 2 entries).
  std::vector<Node> successors(Node N) const;
};

struct Program {
  std::vector<GlobalVar> Globals;
  std::vector<ExternalDecl> Externals;
  std::vector<Function> Functions;
  std::string EntryPoint = "main";

  const Function *findFunction(const std::string &Name) const;
  const GlobalVar *findGlobal(const std::string &Name) const;
  const ExternalDecl *findExternal(const std::string &Name) const;

  std::string str() const;
};

/// Lowers Cminor to RTL.
Program lowerFromCminor(const cminor::Program &P);

/// Runs the entry point; same event/trace conventions as the other levels.
Behavior runProgram(const Program &P, uint64_t Fuel = 50'000'000,
                    const Supervisor *Sup = nullptr);

/// Streaming variant: events are delivered to \p Sink; only the outcome
/// is returned.
Outcome runProgram(const Program &P, TraceSink &Sink,
                   uint64_t Fuel = 50'000'000,
                   const Supervisor *Sup = nullptr);

} // namespace rtl
} // namespace qcc

#endif // QCC_RTL_RTL_H
