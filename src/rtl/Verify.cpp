//===- rtl/Verify.cpp - RTL well-formedness checks ------------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "rtl/Verify.h"

#include <set>

using namespace qcc;
using namespace qcc::rtl;

namespace {

class Verifier {
public:
  Verifier(const Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  void run() {
    std::set<std::string> Seen;
    for (const GlobalVar &G : P.Globals)
      if (!Seen.insert(G.Name).second)
        Diags.error(G.Loc, "rtl: duplicate global '" + G.Name + "'");
    for (const ExternalDecl &E : P.Externals)
      if (!Seen.insert(E.Name).second)
        Diags.error(E.Loc, "rtl: duplicate declaration '" + E.Name + "'");
    for (const Function &F : P.Functions)
      if (!Seen.insert(F.Name).second)
        Diags.error(F.Loc, "rtl: duplicate function '" + F.Name + "'");

    const Function *Main = P.findFunction(P.EntryPoint);
    if (!Main)
      Diags.error(SourceLoc(),
                  "rtl: entry point '" + P.EntryPoint + "' is not defined");
    else if (Main->NumParams != 0)
      Diags.error(Main->Loc, "rtl: entry point must take no parameters");

    for (const Function &F : P.Functions)
      verifyFunction(F);
  }

private:
  void verifyFunction(const Function &F) {
    Fn = &F;
    if (F.NumParams > F.NumRegs)
      Diags.error(F.Loc, "rtl: '" + F.Name + "' declares " +
                             std::to_string(F.NumParams) + " parameters in " +
                             std::to_string(F.NumRegs) + " registers");
    if (F.Nodes.empty()) {
      Diags.error(F.Loc, "rtl: function '" + F.Name + "' has no nodes");
      return;
    }
    if (F.Entry >= F.Nodes.size())
      Diags.error(F.Loc, "rtl: entry node " + std::to_string(F.Entry) +
                             " out of range in '" + F.Name + "' (" +
                             std::to_string(F.Nodes.size()) + " nodes)");
    for (Node N = 0; N != F.Nodes.size(); ++N)
      verifyInstr(F.Nodes[N], N);
  }

  void badNode(Node N, const std::string &Message) {
    Diags.error(Fn->Loc, "rtl: node " + std::to_string(N) + " in '" +
                             Fn->Name + "': " + Message);
  }

  void checkReg(Reg R, Node N, const char *Role) {
    if (R >= Fn->NumRegs)
      badNode(N, std::string(Role) + " register r" + std::to_string(R) +
                     " out of range (" + std::to_string(Fn->NumRegs) +
                     " registers)");
  }

  void checkSucc(Node Target, Node N, const char *Edge) {
    if (Target >= Fn->Nodes.size())
      badNode(N, std::string(Edge) + " successor " +
                     (Target == NoNode ? std::string("<none>")
                                       : std::to_string(Target)) +
                     " out of range (" + std::to_string(Fn->Nodes.size()) +
                     " nodes)");
  }

  void checkGlobal(const std::string &Name, bool WantArray, Node N) {
    const GlobalVar *G = P.findGlobal(Name);
    if (!G) {
      badNode(N, "unknown global '" + Name + "'");
      return;
    }
    if (G->IsArray != WantArray)
      badNode(N, WantArray
                     ? "subscript applied to scalar '" + Name + "'"
                     : "global array '" + Name + "' accessed without subscript");
  }

  void verifyInstr(const Instr &I, Node N) {
    switch (I.K) {
    case InstrKind::Nop:
      break;
    case InstrKind::Const:
      checkReg(I.Dst, N, "destination");
      break;
    case InstrKind::Move:
    case InstrKind::Unary:
      checkReg(I.Dst, N, "destination");
      checkReg(I.Src1, N, "source");
      break;
    case InstrKind::Binary:
      checkReg(I.Dst, N, "destination");
      checkReg(I.Src1, N, "left source");
      checkReg(I.Src2, N, "right source");
      break;
    case InstrKind::GlobLoad:
      checkReg(I.Dst, N, "destination");
      checkGlobal(I.Name, /*WantArray=*/false, N);
      break;
    case InstrKind::GlobStore:
      checkReg(I.Src1, N, "source");
      checkGlobal(I.Name, /*WantArray=*/false, N);
      break;
    case InstrKind::ArrayLoad:
      checkReg(I.Dst, N, "destination");
      checkReg(I.Src1, N, "index");
      checkGlobal(I.Name, /*WantArray=*/true, N);
      break;
    case InstrKind::ArrayStore:
      checkReg(I.Src1, N, "index");
      checkReg(I.Src2, N, "source");
      checkGlobal(I.Name, /*WantArray=*/true, N);
      break;
    case InstrKind::Call:
      verifyCall(I, N);
      break;
    case InstrKind::Cond:
      checkReg(I.Src1, N, "condition");
      checkSucc(I.Succ2, N, "false");
      break;
    case InstrKind::Return:
      // No shape check against ReturnsValue here: RTL lowering emits an
      // unreachable fall-off void-return node even in value functions
      // (Cminor's verifier enforces the source-level discipline).
      if (I.HasValue)
        checkReg(I.Src1, N, "result");
      // Return leaves the function: no successor edge to check.
      return;
    }
    checkSucc(I.Succ, N, "fallthrough");
  }

  void verifyCall(const Instr &I, Node N) {
    for (Reg A : I.Args)
      checkReg(A, N, "argument");
    if (I.HasDest)
      checkReg(I.Dst, N, "destination");
    if (const Function *Callee = P.findFunction(I.Name)) {
      if (Callee->NumParams != I.Args.size())
        badNode(N, "call to '" + I.Name + "' with " +
                       std::to_string(I.Args.size()) +
                       " argument(s), expects " +
                       std::to_string(Callee->NumParams));
      if (I.HasDest && !Callee->ReturnsValue)
        badNode(N, "result of void function '" + I.Name + "' used");
      return;
    }
    if (const ExternalDecl *Ext = P.findExternal(I.Name)) {
      if (Ext->Arity != I.Args.size())
        badNode(N, "call to external '" + I.Name + "' with " +
                       std::to_string(I.Args.size()) +
                       " argument(s), expects " + std::to_string(Ext->Arity));
      if (I.HasDest && !Ext->HasResult)
        badNode(N, "result of void external '" + I.Name + "' used");
      return;
    }
    badNode(N, "call to unknown function '" + I.Name + "'");
  }

  const Program &P;
  DiagnosticEngine &Diags;
  const Function *Fn = nullptr;
};

} // namespace

bool qcc::rtl::verifyProgram(const Program &P, DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  Verifier(P, Diags).run();
  return Diags.errorCount() == Before;
}
