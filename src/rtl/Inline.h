//===- rtl/Inline.h - Function inlining -------------------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function inlining at the RTL level — one of the two optional CompCert
/// optimizations the paper disables and defers to its technical report
/// (section 3.3). Inlining *deletes* the call/return memory events of the
/// inlined site, which quantitative refinement permits (the weight only
/// decreases; the pointwise profile-domination certificate covers it),
/// and migrates the callee's register pressure into the caller's frame,
/// which the frame-derived cost metric picks up automatically.
///
/// Source-level bounds stay sound — the Mach trace weight they dominate
/// only shrank — but lose tightness at inlined sites: the bound still
/// budgets M(callee) for a call that no longer happens. The ablation in
/// bench_inlining quantifies exactly that effect, the paper TR's topic.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_RTL_INLINE_H
#define QCC_RTL_INLINE_H

#include "rtl/Rtl.h"

namespace qcc {
namespace rtl {

/// Tuning: callees at most this many instructions get inlined.
inline constexpr unsigned DefaultInlineThreshold = 24;

/// Inlines small, non-recursive internal callees into their call sites.
/// Returns the number of call sites inlined. Run before
/// `optimizeProgram` so the cleanup passes tidy the spliced code.
unsigned inlineFunctions(Program &P,
                         unsigned Threshold = DefaultInlineThreshold);

} // namespace rtl
} // namespace qcc

#endif // QCC_RTL_INLINE_H
