//===- rtl/Verify.h - RTL well-formedness checks ----------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness of RTL control-flow graphs: the entry node
/// and every successor edge lands inside the node array (or is the NoNode
/// sentinel exactly where the instruction kind leaves the function),
/// every register is below NumRegs, and every global/array/callee name
/// resolves with the right shape and arity. The driver runs this after
/// the RTL lowering and again after the optimization passes, so the Mach
/// lowering and the RTL interpreter may assume a verified graph.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_RTL_VERIFY_H
#define QCC_RTL_VERIFY_H

#include "rtl/Rtl.h"
#include "support/Diagnostics.h"

namespace qcc {
namespace rtl {

/// Checks \p P; reports problems to \p Diags. Returns true when no errors
/// were found.
bool verifyProgram(const Program &P, DiagnosticEngine &Diags);

} // namespace rtl
} // namespace qcc

#endif // QCC_RTL_VERIFY_H
