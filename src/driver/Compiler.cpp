//===- driver/Compiler.cpp - The Quantitative CompCert driver -------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include "clight/Verify.h"
#include "cminor/CminorInterp.h"
#include "cminor/Lower.h"
#include "cminor/Verify.h"
#include "events/Refinement.h"
#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "mach/Verify.h"
#include "rtl/Inline.h"
#include "rtl/Opt.h"
#include "rtl/Verify.h"
#include "x86/Machine.h"
#include "x86/Verify.h"

#include <chrono>
#include <functional>

using namespace qcc;
using namespace qcc::driver;

namespace {

/// Times one pipeline stage into PassStats::PassMicros (no-op when the
/// caller did not ask for stats).
class StageTimer {
public:
  StageTimer(PassStats *Stats, const char *Pass)
      : Stats(Stats), Pass(Pass),
        Start(std::chrono::steady_clock::now()) {}
  ~StageTimer() {
    if (!Stats)
      return;
    auto End = std::chrono::steady_clock::now();
    Stats->PassMicros.emplace_back(
        Pass, std::chrono::duration_cast<std::chrono::microseconds>(
                  End - Start)
                  .count());
  }

private:
  PassStats *Stats;
  const char *Pass;
  std::chrono::steady_clock::time_point Start;
};

/// Validates one pass from the two levels' streaming summaries. On the
/// (cold) failure path both levels are replayed once with recording sinks
/// and the trace-based checker reports the precise divergence — the hash
/// comparison in the summaries can only say *that* the event sequences
/// differ, not where.
bool validatePair(const RefinementSummary &Target,
                  const RefinementSummary &Source, const char *Pass,
                  DiagnosticEngine &Diags,
                  const std::function<Behavior()> &RerunTarget,
                  const std::function<Behavior()> &RerunSource,
                  const Supervisor *Sup = nullptr) {
  RefinementResult R = checkQuantitativeRefinement(Target, Source);
  if (!R.Ok) {
    // A supervisor stop truncates the traces asymmetrically, so a
    // mismatch proves nothing: withhold the verdict (the caller reports
    // the stop) instead of claiming a validation failure.
    if (Sup && Sup->stopRequested())
      return false;
    RefinementResult Detailed =
        checkQuantitativeRefinement(RerunTarget(), RerunSource());
    if (Sup && Sup->stopRequested())
      return false; // Stopped mid-rerun; Detailed is untrustworthy.
    Diags.error(SourceLoc(), std::string("translation validation failed (") +
                                 Pass + "): " +
                                 (Detailed.Ok ? R.Reason : Detailed.Reason));
    return false;
  }
  return true;
}

} // namespace

const char *qcc::driver::stageName(PipelineStage S) {
  switch (S) {
  case PipelineStage::Clight: return "clight";
  case PipelineStage::Cminor: return "cminor";
  case PipelineStage::Rtl: return "rtl";
  case PipelineStage::Mach: return "mach";
  case PipelineStage::Asm: return "asm";
  }
  return "?";
}

std::optional<Compilation> qcc::driver::compile(const std::string &Source,
                                                DiagnosticEngine &Diags,
                                                CompilerOptions Options) {
  return compile(Source, Diags, std::move(Options), nullptr);
}

std::optional<clight::Program>
qcc::driver::parseOnly(const std::string &Source, DiagnosticEngine &Diags,
                       const CompilerOptions &Options) {
  return frontend::parseProgram(Source, Diags, Options.Defines);
}

std::optional<Compilation>
qcc::driver::lowerPipeline(const std::string &Source, DiagnosticEngine &Diags,
                           const CompilerOptions &Options, PassStats *Stats) {
  std::optional<clight::Program> CL;
  {
    StageTimer T(Stats, "parse");
    CL = frontend::parseProgram(Source, Diags, Options.Defines);
  }
  if (!CL)
    return std::nullopt;

  Compilation C;
  C.Clight = std::move(*CL);
  auto Fault = [&Options, &C](PipelineStage S) {
    if (Options.FaultHook)
      Options.FaultHook(S, C);
  };
  // Stage-boundary supervision poll: a stopped compilation reports the
  // cause once and withholds everything downstream.
  auto Stopped = [&Options, &Diags] {
    Supervisor *S = Options.Supervision;
    if (!S || !S->stopRequested())
      return false;
    Diags.error(SourceLoc(), std::string("compilation stopped: ") +
                                 stopCauseName(S->cause()));
    return true;
  };
  if (Stopped())
    return std::nullopt;

  // Each stage's output is re-validated at the pass boundary (after the
  // fault hook, when one is installed), so every downstream consumer —
  // the next lowering, the interpreters, the refinement checker — only
  // ever sees well-formed IR and reports malformed input as a structured
  // diagnostic instead of tripping an internal assert. The frontend
  // already verified the Clight it produced; it is re-checked only when
  // a hook had a chance to corrupt it.
  Fault(PipelineStage::Clight);
  if (Options.FaultHook && !clight::verify(C.Clight, Diags))
    return std::nullopt;
  {
    StageTimer T(Stats, "lower-cminor");
    C.Cminor = cminor::lowerFromClight(C.Clight);
  }
  Fault(PipelineStage::Cminor);
  {
    StageTimer T(Stats, "verify-cminor");
    if (!cminor::verifyProgram(C.Cminor, Diags))
      return std::nullopt;
  }
  {
    StageTimer T(Stats, "lower-rtl");
    C.Rtl = rtl::lowerFromCminor(C.Cminor);
  }
  if (Options.Inline) {
    StageTimer T(Stats, "rtl-inline");
    rtl::inlineFunctions(C.Rtl);
  }
  if (Options.Optimize) {
    StageTimer T(Stats, "rtl-opt");
    rtl::optimizeProgram(C.Rtl);
  }
  Fault(PipelineStage::Rtl);
  {
    StageTimer T(Stats, "verify-rtl");
    if (!rtl::verifyProgram(C.Rtl, Diags))
      return std::nullopt;
  }
  {
    StageTimer T(Stats, "lower-mach");
    mach::LowerOptions MachOpts;
    MachOpts.TailCalls = Options.TailCalls;
    C.Mach = mach::lowerFromRtl(C.Rtl, MachOpts);
  }
  Fault(PipelineStage::Mach);
  {
    StageTimer T(Stats, "verify-mach");
    if (!mach::verifyProgram(C.Mach, Diags))
      return std::nullopt;
  }
  {
    StageTimer T(Stats, "emit-asm");
    C.Asm = x86::emitFromMach(C.Mach);
  }
  Fault(PipelineStage::Asm);
  {
    StageTimer T(Stats, "verify-asm");
    if (!x86::verifyProgram(C.Asm, Diags))
      return std::nullopt;
  }
  C.Metric = C.Mach.costMetric();

  if (Stopped())
    return std::nullopt;
  return C;
}

bool qcc::driver::validateTranslation(const Compilation &C,
                                      DiagnosticEngine &Diags,
                                      const CompilerOptions &Options,
                                      PassStats *Stats) {
  auto Stopped = [&Options, &Diags] {
    Supervisor *S = Options.Supervision;
    if (!S || !S->stopRequested())
      return false;
    Diags.error(SourceLoc(), std::string("compilation stopped: ") +
                                 stopCauseName(S->cause()));
    return true;
  };
  {
    StageTimer T(Stats, "validate");
    Supervisor *Sup = Options.Supervision;
    // Each level streams its events into a RefinementAccumulator; nothing
    // is materialized unless a pair fails (validatePair's rerun path).
    // The accumulators charge the supervisor's memory budget as their
    // profiles grow.
    RefinementAccumulator AClight(Sup), ACminor(Sup), ARtl(Sup), AMach(Sup),
        AAsm(Sup);
    RefinementSummary SClight = AClight.finish(
        interp::runProgram(C.Clight, AClight, Options.ValidationFuel, Sup));
    RefinementSummary SCminor = ACminor.finish(
        cminor::runProgram(C.Cminor, ACminor, Options.ValidationFuel, Sup));
    RefinementSummary SRtl = ARtl.finish(
        rtl::runProgram(C.Rtl, ARtl, Options.ValidationFuel, Sup));
    RefinementSummary SMach = AMach.finish(
        mach::runProgram(C.Mach, AMach, Options.ValidationFuel * 4, Sup));
    // Mach -> Asm: replay the machine with ample stack; memory events
    // vanish at this level, which profile domination covers.
    x86::Machine M(C.Asm, measure::MeasureStackSize);
    RefinementSummary SAsm =
        AAsm.finish(M.run(AAsm, Options.ValidationFuel * 4, Sup));

    bool Ok = validatePair(
        SCminor, SClight, "Clight->Cminor", Diags,
        [&] {
          return cminor::runProgram(C.Cminor, Options.ValidationFuel, Sup);
        },
        [&] {
          return interp::runProgram(C.Clight, Options.ValidationFuel, Sup);
        },
        Sup);
    Ok &= validatePair(
        SRtl, SCminor, "Cminor->RTL(+opt)", Diags,
        [&] { return rtl::runProgram(C.Rtl, Options.ValidationFuel, Sup); },
        [&] {
          return cminor::runProgram(C.Cminor, Options.ValidationFuel, Sup);
        },
        Sup);
    Ok &= validatePair(
        SMach, SRtl, "RTL->Mach", Diags,
        [&] {
          return mach::runProgram(C.Mach, Options.ValidationFuel * 4, Sup);
        },
        [&] { return rtl::runProgram(C.Rtl, Options.ValidationFuel, Sup); },
        Sup);
    Ok &= validatePair(
        SAsm, SMach, "Mach->Asm", Diags,
        [&] { return M.run(Options.ValidationFuel * 4, Sup); },
        [&] {
          return mach::runProgram(C.Mach, Options.ValidationFuel * 4, Sup);
        },
        Sup);
    if (Stats) {
      auto Replayed = [Stats](const char *Pass,
                              const RefinementSummary &Target,
                              const RefinementSummary &Source) {
        Stats->ReplayedEvents.emplace_back(
            Pass, Target.EventCount + Source.EventCount);
      };
      Replayed("Clight->Cminor", SCminor, SClight);
      Replayed("Cminor->RTL(+opt)", SRtl, SCminor);
      Replayed("RTL->Mach", SMach, SRtl);
      Replayed("Mach->Asm", SAsm, SMach);
    }
    // Report a stop before a failure: a stopped run withholds its
    // verdict, and validatePair suppressed its own diagnostics above.
    if (Stopped())
      return false;
    if (!Ok)
      return false;
  }
  return true;
}

std::optional<Compilation> qcc::driver::compile(const std::string &Source,
                                                DiagnosticEngine &Diags,
                                                CompilerOptions Options,
                                                PassStats *Stats) {
  std::optional<Compilation> Lowered =
      lowerPipeline(Source, Diags, Options, Stats);
  if (!Lowered)
    return std::nullopt;
  Compilation C = std::move(*Lowered);

  if (Options.ValidateTranslation &&
      !validateTranslation(C, Diags, Options, Stats))
    return std::nullopt;

  if (Options.AnalyzeBounds) {
    StageTimer T(Stats, "analyze");
    C.Bounds =
        analysis::analyzeProgram(C.Clight, Diags,
                                 std::move(Options.SeededSpecs),
                                 Options.Supervision);
    if (Stats) {
      Stats->ProofNodes += C.Bounds.proofNodeCount();
      Stats->ProofCheckMicros += C.Bounds.ProofCheckMicros;
      for (unsigned I = 0; I != logic::NumRules; ++I)
        if (C.Bounds.ProofRuleNodes[I])
          Stats->ProofRuleNodes.emplace_back(
              logic::ruleName(static_cast<logic::Rule>(I)),
              C.Bounds.ProofRuleNodes[I]);
    }
    if (Options.Supervision && Options.Supervision->stopRequested())
      return std::nullopt; // The analyzer reported the stop already.
  }
  return C;
}

std::optional<uint64_t>
qcc::driver::concreteCallBound(const Compilation &C,
                               const std::string &Function,
                               const logic::VarEnv &Args) {
  logic::BoundExpr Bound = C.Bounds.callBound(Function);
  if (!Bound)
    return std::nullopt;
  ExtNat V = logic::evalBound(Bound, C.Metric, Args);
  if (V.isInfinite())
    return std::nullopt;
  return V.finiteValue();
}

measure::Measurement qcc::driver::runWithStackSize(const Compilation &C,
                                                   uint32_t StackSize,
                                                   uint64_t Fuel,
                                                   const Supervisor *Sup) {
  return measure::measureProgram(C.Asm, StackSize, Fuel, Sup);
}

measure::Measurement qcc::driver::measureStack(const Compilation &C,
                                          uint64_t Fuel,
                                          const Supervisor *Sup) {
  return measure::measureProgram(C.Asm, measure::MeasureStackSize, Fuel, Sup);
}
