//===- driver/Compiler.h - The Quantitative CompCert driver -----*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end driver (Paper Figure 3): parse -> Clight -> Cminor ->
/// RTL (-> optimized RTL) -> Mach -> x86 ASM_sz, producing
///
///   * the assembled program,
///   * the compiler cost metric M(f) = SF(f) + 4 (from the Mach frames),
///   * automatically derived, checker-validated stack bounds for every
///     non-recursive function, composed with any seeded (interactively
///     derived) specifications,
///   * optional per-pass translation validation: each adjacent pair of
///     levels is replayed and checked for quantitative refinement — the
///     executable counterpart of the paper's pass-by-pass Coq proofs.
///
/// `concreteCallBound` instantiates a symbolic bound with the produced
/// metric: the number the paper's Tables 1/2 report. `runWithStackSize`
/// exercises Theorem 1: with sz at least bound - 4, the compiled program
/// runs without stack overflow.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_DRIVER_COMPILER_H
#define QCC_DRIVER_COMPILER_H

#include "analysis/Analyzer.h"
#include "cminor/Cminor.h"
#include "clight/Clight.h"
#include "logic/Logic.h"
#include "mach/Mach.h"
#include "measure/StackMeter.h"
#include "rtl/Rtl.h"
#include "support/Diagnostics.h"
#include "x86/Asm.h"

#include <functional>
#include <map>
#include <optional>
#include <string>

namespace qcc {
namespace driver {

struct Compilation;

/// The pipeline boundaries at which the driver re-validates its IR (and
/// at which the fuzz harness may inject faults): after the frontend, and
/// after each lowering pass.
enum class PipelineStage : uint8_t { Clight, Cminor, Rtl, Mach, Asm };

/// Display name of \p S ("clight", "cminor", ...).
const char *stageName(PipelineStage S);

/// Options controlling one compilation.
struct CompilerOptions {
  /// -D equivalents; override #defines in the source.
  std::map<std::string, uint32_t> Defines;
  /// Run the RTL optimization pipeline.
  bool Optimize = true;
  /// Inline small non-recursive functions at RTL (paper section 3.3's
  /// deferred optimization). Sound — weights only decrease — but bounds
  /// lose tightness at inlined call sites; off by default.
  bool Inline = false;
  /// Recognize tail calls at the RTL -> Mach boundary (the other
  /// section 3.3 optimization): frames are released before the jump, so
  /// e.g. tail-recursive functions run in constant stack while their
  /// bounds stay as derived; off by default.
  bool TailCalls = false;
  /// Replay all levels and check quantitative refinement per pass.
  bool ValidateTranslation = true;
  /// Fuel for validation runs.
  uint64_t ValidationFuel = 50'000'000;
  /// Interactively derived specifications (e.g. for recursive functions);
  /// composed into the automatic analysis.
  logic::FunctionContext SeededSpecs;
  /// Run the automatic stack analyzer.
  bool AnalyzeBounds = true;
  /// Testing hook: invoked right after each pipeline stage produces its
  /// IR, *before* the driver's well-formedness validation of that IR. The
  /// fuzz harness uses it to corrupt intermediate programs and assert
  /// that every consumer reports a diagnostic instead of crashing. Not
  /// part of the cache key; leave unset outside fault-injection tests.
  std::function<void(PipelineStage, Compilation &)> FaultHook;
  /// Cooperative supervision: deadline, cancellation and memory budget.
  /// Polled at every stage boundary, in the hot loops of all five
  /// validation interpreters, and per node in the proof checker; the
  /// streaming sinks charge its memory budget as they grow. A stopped
  /// compilation reports a "stopped: <cause>" diagnostic and returns
  /// nullopt — it withholds its verdict rather than misreporting a
  /// budget stop as a verification failure. Not part of the cache key;
  /// leave unset for unsupervised runs.
  Supervisor *Supervision = nullptr;
};

/// Everything one compilation produces.
struct Compilation {
  clight::Program Clight;
  cminor::Program Cminor;
  rtl::Program Rtl; ///< Post-optimization when Optimize was set.
  mach::Program Mach;
  x86::Program Asm;
  /// The produced cost metric: M(f) = SF(f) + 4.
  StackMetric Metric;
  /// Analyzer output (specs and checked derivations).
  analysis::AnalysisResult Bounds;
};

/// Per-pass instrumentation of one compilation, filled in by the
/// four-argument \c compile overload. The batch engine aggregates these
/// into its metrics report.
struct PassStats {
  /// Wall time per pipeline stage, in microseconds, in execution order
  /// (e.g. {"parse", 120}, {"lower-cminor", 8}, ...).
  std::vector<std::pair<std::string, uint64_t>> PassMicros;
  /// Refinement-replay volume per validated pass pair: the number of
  /// events in the target and source traces the checker compared.
  std::vector<std::pair<std::string, uint64_t>> ReplayedEvents;
  /// Total derivation nodes the proof checker validated across every
  /// automatic bound.
  uint64_t ProofNodes = 0;
  /// Wall time spent inside the proof checker validating fresh bounds
  /// (already included in the "analyze" pass time).
  uint64_t ProofCheckMicros = 0;
  /// Proof-checker node visits per rule, nonzero rules only, in rule
  /// declaration order.
  std::vector<std::pair<std::string, uint64_t>> ProofRuleNodes;
};

/// Compiles \p Source end to end. Returns nullopt and reports through
/// \p Diags on frontend errors or validation failures.
std::optional<Compilation> compile(const std::string &Source,
                                   DiagnosticEngine &Diags,
                                   CompilerOptions Options = {});

/// As above, additionally recording per-pass statistics into \p Stats
/// (ignored when null).
std::optional<Compilation> compile(const std::string &Source,
                                   DiagnosticEngine &Diags,
                                   CompilerOptions Options,
                                   PassStats *Stats);

/// The lowering half of \c compile: frontend plus every lowering pass and
/// its boundary validation, producing the assembled program and the cost
/// metric — but no translation validation and no bound analysis. The
/// incremental engine runs this fresh on every job (it is cheap and keeps
/// the metric correct by construction) and decides separately, from its
/// function-level keys, whether the expensive phases below need to run.
std::optional<Compilation> lowerPipeline(const std::string &Source,
                                         DiagnosticEngine &Diags,
                                         const CompilerOptions &Options,
                                         PassStats *Stats = nullptr);

/// The translation-validation half of \c compile: replays all five levels
/// of \p C and checks quantitative refinement across each adjacent pair.
/// Returns false on a validation failure *or* a supervision stop; both
/// are reported through \p Diags exactly as \c compile reports them.
bool validateTranslation(const Compilation &C, DiagnosticEngine &Diags,
                         const CompilerOptions &Options,
                         PassStats *Stats = nullptr);

/// Parses \p Source exactly as a full compilation would (frontend plus
/// \p Options.Defines), with no lowering, validation, or analysis. The
/// persistent store's `--store-verify` re-check uses it to re-attach
/// loaded derivations: re-parsing under the same options discipline
/// guarantees the statement preorder indices in a stored proof blob
/// resolve against the same Clight tree the analyzer derived them on.
std::optional<clight::Program> parseOnly(const std::string &Source,
                                         DiagnosticEngine &Diags,
                                         const CompilerOptions &Options = {});

/// The concrete verified bound, in bytes, for calling \p Function —
/// symbolic call bound instantiated with the compilation's metric and
/// \p Args (values for the function's parameters, needed by parametric
/// bounds). Nullopt when the function has no specification; infinity
/// surfaces as nullopt too (no finite bound).
std::optional<uint64_t> concreteCallBound(const Compilation &C,
                                          const std::string &Function,
                                          const logic::VarEnv &Args = {});

/// Runs the assembled program on a stack of exactly \p StackSize bytes
/// (Theorem 1's sz; the machine block is sz + 4).
measure::Measurement runWithStackSize(const Compilation &C,
                                      uint32_t StackSize,
                                      uint64_t Fuel = x86::DefaultFuel,
                                      const Supervisor *Sup = nullptr);

/// Measures actual stack consumption on a large stack (the ptrace-analog
/// experiment of Paper section 6).
measure::Measurement measureStack(const Compilation &C,
                             uint64_t Fuel = x86::DefaultFuel,
                             const Supervisor *Sup = nullptr);

} // namespace driver
} // namespace qcc

#endif // QCC_DRIVER_COMPILER_H
