//===- cminor/Verify.h - Cminor well-formedness checks ----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness of Cminor programs: every temporary index is
/// in range, every global/array/callee name resolves with the right shape
/// and arity, every `exit n` has at least n+1 enclosing blocks, returns
/// agree with the function's result convention, and every statement and
/// expression node carries the children its kind requires. The driver
/// runs this after the Clight -> Cminor pass (and after any fault-injection
/// hook), so the RTL lowering and the Cminor interpreter may assume a
/// verified program — their remaining asserts are internal invariants.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_CMINOR_VERIFY_H
#define QCC_CMINOR_VERIFY_H

#include "cminor/Cminor.h"
#include "support/Diagnostics.h"

namespace qcc {
namespace cminor {

/// Checks \p P; reports problems to \p Diags. Returns true when no errors
/// were found.
bool verifyProgram(const Program &P, DiagnosticEngine &Diags);

} // namespace cminor
} // namespace qcc

#endif // QCC_CMINOR_VERIFY_H
