//===- cminor/CminorInterp.h - Cminor interpreter ---------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small-step semantics of Cminor, emitting the same call/return and
/// I/O events as Clight. Used by the translation-validation harness to
/// certify the Clight -> Cminor pass on each compilation.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_CMINOR_CMINORINTERP_H
#define QCC_CMINOR_CMINORINTERP_H

#include "cminor/Cminor.h"
#include "events/Trace.h"
#include "events/TraceSink.h"

#include <cstdint>

namespace qcc {
namespace cminor {

/// Runs the entry point of \p P with the given small-step fuel, under
/// optional cooperative supervision (deadline/cancel/memory budget).
Behavior runProgram(const Program &P, uint64_t Fuel = 50'000'000,
                    const Supervisor *Sup = nullptr);

/// Streaming variant: events are delivered to \p Sink; only the outcome
/// is returned.
Outcome runProgram(const Program &P, TraceSink &Sink,
                   uint64_t Fuel = 50'000'000,
                   const Supervisor *Sup = nullptr);

} // namespace cminor
} // namespace qcc

#endif // QCC_CMINOR_CMINORINTERP_H
