//===- cminor/Lower.h - Clight to Cminor lowering ---------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Clight -> Cminor pass: named variables become numbered temporaries,
/// conditional expressions become control flow, `loop`/`break` become
/// CompCert's block/loop/exit discipline. Function call and return events
/// are preserved exactly (the pass's quantitative-refinement certificate).
///
//===----------------------------------------------------------------------===//

#ifndef QCC_CMINOR_LOWER_H
#define QCC_CMINOR_LOWER_H

#include "cminor/Cminor.h"
#include "clight/Clight.h"

namespace qcc {
namespace cminor {

/// Lowers a verified Clight program. Never fails on verified input.
Program lowerFromClight(const clight::Program &P);

} // namespace cminor
} // namespace qcc

#endif // QCC_CMINOR_LOWER_H
