//===- cminor/Cminor.h - Cminor intermediate language -----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cminor, the first intermediate language of the pipeline (mirroring
/// CompCert's Cminor in the respects that matter here):
///
///   * named variables become numbered temporaries,
///   * conditional expressions are gone (lowered to control flow),
///   * structured non-local exits use CompCert's block/exit discipline:
///     `exit n` terminates n+1 enclosing blocks; loops are transparent
///     to exits, which is how `break` compiles.
///
/// The operational semantics (cminor/Interp) emits the same call/return
/// events as Clight: the Clight -> Cminor pass preserves memory events
/// exactly, which is its quantitative-refinement certificate.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_CMINOR_CMINOR_H
#define QCC_CMINOR_CMINOR_H

#include "clight/Clight.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace qcc {
namespace cminor {

/// Cminor reuses Clight's operator vocabulary (the elaborator has already
/// resolved signedness).
using clight::BinOp;
using clight::UnOp;
using clight::ExternalDecl;
using clight::GlobalVar;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  Const,
  Temp,      ///< Read temporary #N.
  GlobalLoad,///< Load a global scalar.
  ArrayLoad, ///< Load element of a global array.
  Unary,
  Binary
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind Kind;
  uint32_t IntValue = 0; ///< Const.
  uint32_t TempIndex = 0;///< Temp.
  std::string Name;      ///< GlobalLoad / ArrayLoad.
  UnOp UOp = UnOp::Neg;
  BinOp BOp = BinOp::Add;
  ExprPtr Lhs, Rhs;

  static ExprPtr constant(uint32_t V);
  static ExprPtr temp(uint32_t Index);
  static ExprPtr globalLoad(std::string Name);
  static ExprPtr arrayLoad(std::string Name, ExprPtr Index);
  static ExprPtr unary(UnOp Op, ExprPtr E);
  static ExprPtr binary(BinOp Op, ExprPtr L, ExprPtr R);

  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Skip,
  Assign,     ///< tN = expr
  GlobStore,  ///< glob = expr
  ArrayStore, ///< arr[expr] = expr
  Call,       ///< [tN =] f(args)
  Seq,
  If,
  Loop,       ///< Infinite; left via exit or return.
  Block,      ///< Exit target.
  Exit,       ///< exit n: terminates n+1 enclosing blocks.
  Return
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;

  uint32_t TempIndex = 0;      ///< Assign / Call destination.
  bool HasDest = false;        ///< Call.
  std::string Name;            ///< GlobStore/ArrayStore global, Call callee.
  ExprPtr Addr;                ///< ArrayStore index.
  ExprPtr Value;               ///< Assign/Store value, If condition,
                               ///< Return value.
  bool HasValue = false;       ///< Return.
  std::vector<ExprPtr> Args;   ///< Call.
  uint32_t ExitDepth = 0;      ///< Exit.
  StmtPtr First, Second;       ///< Seq / If branches / Loop / Block body.

  static StmtPtr skip(SourceLoc Loc = {});
  static StmtPtr assign(uint32_t Temp, ExprPtr Value, SourceLoc Loc = {});
  static StmtPtr globStore(std::string Name, ExprPtr Value,
                           SourceLoc Loc = {});
  static StmtPtr arrayStore(std::string Name, ExprPtr Index, ExprPtr Value,
                            SourceLoc Loc = {});
  static StmtPtr call(bool HasDest, uint32_t DestTemp, std::string Callee,
                      std::vector<ExprPtr> Args, SourceLoc Loc = {});
  static StmtPtr seq(StmtPtr S1, StmtPtr S2, SourceLoc Loc = {});
  static StmtPtr ifThenElse(ExprPtr Cond, StmtPtr Then, StmtPtr Else,
                            SourceLoc Loc = {});
  static StmtPtr loop(StmtPtr Body, SourceLoc Loc = {});
  static StmtPtr block(StmtPtr Body, SourceLoc Loc = {});
  static StmtPtr exit(uint32_t Depth, SourceLoc Loc = {});
  static StmtPtr retVoid(SourceLoc Loc = {});
  static StmtPtr ret(ExprPtr Value, SourceLoc Loc = {});

  std::string str(unsigned Indent = 0) const;
};

//===----------------------------------------------------------------------===//
// Programs
//===----------------------------------------------------------------------===//

struct Function {
  std::string Name;
  uint32_t NumParams = 0; ///< Temps 0 .. NumParams-1 receive arguments.
  uint32_t NumTemps = 0;  ///< Total temporaries (params included).
  bool ReturnsValue = false;
  StmtPtr Body;
  SourceLoc Loc;
};

struct Program {
  std::vector<GlobalVar> Globals;
  std::vector<ExternalDecl> Externals;
  std::vector<Function> Functions;
  std::string EntryPoint = "main";

  const Function *findFunction(const std::string &Name) const;
  const GlobalVar *findGlobal(const std::string &Name) const;
  const ExternalDecl *findExternal(const std::string &Name) const;

  std::string str() const;
};

} // namespace cminor
} // namespace qcc

#endif // QCC_CMINOR_CMINOR_H
