//===- cminor/CminorInterp.cpp - Cminor interpreter -----------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "cminor/CminorInterp.h"

#include <cassert>
#include <limits>
#include <map>

using namespace qcc;
using namespace qcc::cminor;

namespace {

struct EvalResult {
  bool Ok;
  uint32_t Value;
  std::string Fault;

  static EvalResult ok(uint32_t V) { return {true, V, ""}; }
  static EvalResult fault(std::string Reason) {
    return {false, 0, std::move(Reason)};
  }
};

/// The whole-run interpreter state.
class Machine {
public:
  Machine(const Program &P, TraceSink &Sink, uint64_t Fuel,
          const Supervisor *Sup)
      : P(P), Sink(Sink), Fuel(Fuel), Sup(Sup) {
    for (const GlobalVar &G : P.Globals) {
      std::vector<uint32_t> Cells = G.Init;
      Cells.resize(G.Size, 0);
      Globals[G.Name] = std::move(Cells);
    }
  }

  Outcome run() {
    const Function *Entry = P.findFunction(P.EntryPoint);
    if (!Entry)
      return Outcome::fails("entry point is not defined");
    Sink.onEvent(Event::call(sym(Entry->Name)));
    Temps.assign(Entry->NumTemps, 0);
    return exec(Entry);
  }

private:
  /// One continuation frame.
  struct Cont {
    enum class Kind : uint8_t { Seq, Loop, Block, Call } K;
    const Stmt *Next = nullptr; ///< Seq: S2; Loop: body.
    // Call frames:
    bool HasDest = false;
    uint32_t DestTemp = 0;
    SymId Function = 0;
    std::vector<uint32_t> SavedTemps;
  };

  /// Interned id of an IR name, cached by the string's stable address.
  SymId sym(const std::string &Name) {
    auto [It, New] = SymCache.try_emplace(&Name, 0);
    if (New)
      It->second = SymbolTable::global().intern(Name);
    return It->second;
  }

  EvalResult eval(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::Const:
      return EvalResult::ok(E.IntValue);
    case ExprKind::Temp:
      if (E.TempIndex >= Temps.size())
        return EvalResult::fault("temp out of range");
      return EvalResult::ok(Temps[E.TempIndex]);
    case ExprKind::GlobalLoad: {
      auto It = Globals.find(E.Name);
      if (It == Globals.end())
        return EvalResult::fault("unbound global '" + E.Name + "'");
      return EvalResult::ok(It->second[0]);
    }
    case ExprKind::ArrayLoad: {
      auto It = Globals.find(E.Name);
      if (It == Globals.end())
        return EvalResult::fault("unbound array '" + E.Name + "'");
      EvalResult Idx = eval(*E.Lhs);
      if (!Idx.Ok)
        return Idx;
      if (Idx.Value >= It->second.size())
        return EvalResult::fault("index out of bounds for '" + E.Name +
                                 "'");
      return EvalResult::ok(It->second[Idx.Value]);
    }
    case ExprKind::Unary: {
      EvalResult V = eval(*E.Lhs);
      if (!V.Ok)
        return V;
      switch (E.UOp) {
      case UnOp::Neg: return EvalResult::ok(0u - V.Value);
      case UnOp::BoolNot: return EvalResult::ok(V.Value == 0 ? 1u : 0u);
      case UnOp::BitNot: return EvalResult::ok(~V.Value);
      }
      return EvalResult::fault("bad unary op");
    }
    case ExprKind::Binary: {
      EvalResult L = eval(*E.Lhs);
      if (!L.Ok)
        return L;
      EvalResult R = eval(*E.Rhs);
      if (!R.Ok)
        return R;
      return evalBinOp(E.BOp, L.Value, R.Value);
    }
    }
    return EvalResult::fault("bad expression");
  }

  static EvalResult evalBinOp(BinOp Op, uint32_t A, uint32_t B) {
    int32_t SA = static_cast<int32_t>(A), SB = static_cast<int32_t>(B);
    switch (Op) {
    case BinOp::Add: return EvalResult::ok(A + B);
    case BinOp::Sub: return EvalResult::ok(A - B);
    case BinOp::Mul: return EvalResult::ok(A * B);
    case BinOp::DivU:
      if (B == 0)
        return EvalResult::fault("unsigned division by zero");
      return EvalResult::ok(A / B);
    case BinOp::ModU:
      if (B == 0)
        return EvalResult::fault("unsigned remainder by zero");
      return EvalResult::ok(A % B);
    case BinOp::DivS:
      if (SB == 0)
        return EvalResult::fault("signed division by zero");
      if (SA == std::numeric_limits<int32_t>::min() && SB == -1)
        return EvalResult::fault("signed division overflow");
      return EvalResult::ok(static_cast<uint32_t>(SA / SB));
    case BinOp::ModS:
      if (SB == 0)
        return EvalResult::fault("signed remainder by zero");
      if (SA == std::numeric_limits<int32_t>::min() && SB == -1)
        return EvalResult::fault("signed remainder overflow");
      return EvalResult::ok(static_cast<uint32_t>(SA % SB));
    case BinOp::And: return EvalResult::ok(A & B);
    case BinOp::Or: return EvalResult::ok(A | B);
    case BinOp::Xor: return EvalResult::ok(A ^ B);
    case BinOp::Shl: return EvalResult::ok(A << (B & 31));
    case BinOp::ShrU: return EvalResult::ok(A >> (B & 31));
    case BinOp::ShrS:
      return EvalResult::ok(static_cast<uint32_t>(SA >> (B & 31)));
    case BinOp::Eq: return EvalResult::ok(A == B);
    case BinOp::Ne: return EvalResult::ok(A != B);
    case BinOp::LtU: return EvalResult::ok(A < B);
    case BinOp::LeU: return EvalResult::ok(A <= B);
    case BinOp::GtU: return EvalResult::ok(A > B);
    case BinOp::GeU: return EvalResult::ok(A >= B);
    case BinOp::LtS: return EvalResult::ok(SA < SB);
    case BinOp::LeS: return EvalResult::ok(SA <= SB);
    case BinOp::GtS: return EvalResult::ok(SA > SB);
    case BinOp::GeS: return EvalResult::ok(SA >= SB);
    }
    return EvalResult::fault("bad binary op");
  }

  Outcome exec(const Function *Entry) {
    enum class Mode : uint8_t { Exec, FallThrough, Exiting, Returning };
    Mode M = Mode::Exec;
    const Stmt *Cur = Entry->Body.get();
    uint32_t ExitDepth = 0;
    uint32_t ReturnValue = 0;
    std::vector<SymId> Chain = {sym(Entry->Name)};
    uint64_t Steps = 0;

    auto Fail = [&](std::string Reason) {
      return Outcome::fails(std::move(Reason));
    };

    for (;;) {
      if (++Steps > Fuel)
        return Outcome::exhausted();
      if (Supervisor::shouldPoll(Steps, Sup))
        return Outcome::stopped(Sup->cause());

      if (M == Mode::Exec) {
        switch (Cur->Kind) {
        case StmtKind::Skip:
          M = Mode::FallThrough;
          break;
        case StmtKind::Assign: {
          EvalResult V = eval(*Cur->Value);
          if (!V.Ok)
            return Fail(V.Fault);
          Temps[Cur->TempIndex] = V.Value;
          M = Mode::FallThrough;
          break;
        }
        case StmtKind::GlobStore: {
          EvalResult V = eval(*Cur->Value);
          if (!V.Ok)
            return Fail(V.Fault);
          auto It = Globals.find(Cur->Name);
          if (It == Globals.end())
            return Fail("unbound global '" + Cur->Name + "'");
          It->second[0] = V.Value;
          M = Mode::FallThrough;
          break;
        }
        case StmtKind::ArrayStore: {
          EvalResult V = eval(*Cur->Value);
          if (!V.Ok)
            return Fail(V.Fault);
          auto It = Globals.find(Cur->Name);
          if (It == Globals.end())
            return Fail("unbound array '" + Cur->Name + "'");
          EvalResult Idx = eval(*Cur->Addr);
          if (!Idx.Ok)
            return Fail(Idx.Fault);
          if (Idx.Value >= It->second.size())
            return Fail("index out of bounds for '" + Cur->Name + "'");
          It->second[Idx.Value] = V.Value;
          M = Mode::FallThrough;
          break;
        }
        case StmtKind::Call: {
          std::vector<uint32_t> ArgValues;
          for (const ExprPtr &A : Cur->Args) {
            EvalResult V = eval(*A);
            if (!V.Ok)
              return Fail(V.Fault);
            ArgValues.push_back(V.Value);
          }
          if (const Function *Callee = P.findFunction(Cur->Name)) {
            SymId CalleeSym = sym(Callee->Name);
            Sink.onEvent(Event::call(CalleeSym));
            Cont C;
            C.K = Cont::Kind::Call;
            C.HasDest = Cur->HasDest;
            C.DestTemp = Cur->TempIndex;
            C.Function = CalleeSym;
            C.SavedTemps = std::move(Temps);
            Stack.push_back(std::move(C));
            Chain.push_back(CalleeSym);
            Temps.assign(Callee->NumTemps, 0);
            for (size_t I = 0; I < ArgValues.size() &&
                               I < Callee->NumParams;
                 ++I)
              Temps[I] = ArgValues[I];
            Cur = Callee->Body.get();
            break;
          }
          std::vector<int32_t> IOArgs(ArgValues.begin(), ArgValues.end());
          Sink.onEvent(Event::external(
              sym(Cur->Name), SymbolTable::global().internArgs(IOArgs), 0));
          if (Cur->HasDest)
            Temps[Cur->TempIndex] = 0;
          M = Mode::FallThrough;
          break;
        }
        case StmtKind::Seq: {
          Cont C;
          C.K = Cont::Kind::Seq;
          C.Next = Cur->Second.get();
          Stack.push_back(std::move(C));
          Cur = Cur->First.get();
          break;
        }
        case StmtKind::If: {
          EvalResult C = eval(*Cur->Value);
          if (!C.Ok)
            return Fail(C.Fault);
          Cur = C.Value != 0 ? Cur->First.get() : Cur->Second.get();
          break;
        }
        case StmtKind::Loop: {
          Cont C;
          C.K = Cont::Kind::Loop;
          C.Next = Cur->First.get();
          Stack.push_back(std::move(C));
          Cur = Cur->First.get();
          break;
        }
        case StmtKind::Block: {
          Cont C;
          C.K = Cont::Kind::Block;
          Stack.push_back(std::move(C));
          Cur = Cur->First.get();
          break;
        }
        case StmtKind::Exit:
          ExitDepth = Cur->ExitDepth;
          M = Mode::Exiting;
          break;
        case StmtKind::Return: {
          if (Cur->HasValue) {
            EvalResult V = eval(*Cur->Value);
            if (!V.Ok)
              return Fail(V.Fault);
            ReturnValue = V.Value;
          } else {
            ReturnValue = 0;
          }
          M = Mode::Returning;
          break;
        }
        }
        continue;
      }

      if (Stack.empty()) {
        if (M == Mode::FallThrough || M == Mode::Returning) {
          Sink.onEvent(Event::ret(Chain.back()));
          return Outcome::converges(static_cast<int32_t>(ReturnValue));
        }
        return Fail("exit escaped the function body");
      }

      Cont &Top = Stack.back();
      switch (M) {
      case Mode::FallThrough:
        switch (Top.K) {
        case Cont::Kind::Seq:
          Cur = Top.Next;
          Stack.pop_back();
          M = Mode::Exec;
          break;
        case Cont::Kind::Loop:
          Cur = Top.Next; // Loop again.
          M = Mode::Exec;
          break;
        case Cont::Kind::Block:
          Stack.pop_back(); // Fall out of the block.
          break;
        case Cont::Kind::Call: {
          Sink.onEvent(Event::ret(Top.Function));
          Temps = std::move(Top.SavedTemps);
          if (Top.HasDest)
            Temps[Top.DestTemp] = 0; // Void fall-through result.
          Stack.pop_back();
          Chain.pop_back();
          break;
        }
        }
        break;

      case Mode::Exiting:
        switch (Top.K) {
        case Cont::Kind::Seq:
        case Cont::Kind::Loop:
          Stack.pop_back(); // Exits cross sequences and loops.
          break;
        case Cont::Kind::Block:
          Stack.pop_back();
          if (ExitDepth == 0)
            M = Mode::FallThrough;
          else
            --ExitDepth;
          break;
        case Cont::Kind::Call:
          return Fail("exit escaped a function body");
        }
        break;

      case Mode::Returning:
        switch (Top.K) {
        case Cont::Kind::Seq:
        case Cont::Kind::Loop:
        case Cont::Kind::Block:
          Stack.pop_back();
          break;
        case Cont::Kind::Call: {
          Sink.onEvent(Event::ret(Top.Function));
          Temps = std::move(Top.SavedTemps);
          if (Top.HasDest)
            Temps[Top.DestTemp] = ReturnValue;
          Stack.pop_back();
          Chain.pop_back();
          M = Mode::FallThrough;
          break;
        }
        }
        break;

      case Mode::Exec:
        assert(false && "handled above");
        break;
      }
    }
  }

  const Program &P;
  TraceSink &Sink;
  uint64_t Fuel;
  const Supervisor *Sup;
  std::map<std::string, std::vector<uint32_t>> Globals;
  std::vector<uint32_t> Temps;
  std::vector<Cont> Stack;
  std::unordered_map<const std::string *, SymId> SymCache;
};

} // namespace

Behavior qcc::cminor::runProgram(const Program &P, uint64_t Fuel,
                                 const Supervisor *Sup) {
  RecordingSink R;
  return runProgram(P, R, Fuel, Sup).intoBehavior(std::move(R.Events));
}

Outcome qcc::cminor::runProgram(const Program &P, TraceSink &Sink,
                                uint64_t Fuel, const Supervisor *Sup) {
  return Machine(P, Sink, Fuel, Sup).run();
}
