//===- cminor/Lower.cpp - Clight to Cminor lowering -----------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "cminor/Lower.h"

#include <cassert>
#include <map>

using namespace qcc;
using namespace qcc::cminor;
namespace cl = qcc::clight;

namespace {

/// Per-function lowering state.
class FunctionLowering {
public:
  explicit FunctionLowering(const cl::Function &F) : Source(F) {
    for (const std::string &P : F.Params)
      TempOf[P] = NextTemp++;
    NumParams = NextTemp;
    for (const std::string &L : F.Locals)
      TempOf[L] = NextTemp++;
  }

  Function run() {
    Function Out;
    Out.Name = Source.Name;
    Out.NumParams = NumParams;
    Out.ReturnsValue = Source.ReturnsValue;
    Out.Loc = Source.Loc;

    StmtPtr Body = lowerStmt(*Source.Body);
    // Locals start at zero at every pipeline level (determinism choice).
    for (uint32_t T = NumParams; T < NextTempAfterLocals(); ++T)
      Body = Stmt::seq(Stmt::assign(T, Expr::constant(0)), std::move(Body));
    Out.Body = std::move(Body);
    Out.NumTemps = NextTemp;
    return Out;
  }

private:
  uint32_t NextTempAfterLocals() const {
    return NumParams + static_cast<uint32_t>(Source.Locals.size());
  }

  uint32_t freshTemp() { return NextTemp++; }

  uint32_t tempOf(const std::string &Name) const {
    auto It = TempOf.find(Name);
    // Internal invariant, not source-reachable: the driver runs the
    // Clight verifier before this lowering, and it rejects unbound names
    // with a diagnostic (clight/Verify.cpp).
    assert(It != TempOf.end() && "verifier guarantees bound names");
    return It->second;
  }

  /// Lowers a pure Clight expression. Conditional expressions produce
  /// prelude statements appended to \p Prelude.
  ExprPtr lowerExpr(const cl::Expr &E, std::vector<StmtPtr> &Prelude) {
    switch (E.Kind) {
    case cl::ExprKind::IntConst:
      return Expr::constant(E.IntValue);
    case cl::ExprKind::LocalRead:
      return Expr::temp(tempOf(E.Name));
    case cl::ExprKind::GlobalRead:
      return Expr::globalLoad(E.Name);
    case cl::ExprKind::ArrayRead:
      return Expr::arrayLoad(E.Name, lowerExpr(*E.Lhs, Prelude));
    case cl::ExprKind::Unary:
      return Expr::unary(E.UOp, lowerExpr(*E.Lhs, Prelude));
    case cl::ExprKind::Binary: {
      ExprPtr L = lowerExpr(*E.Lhs, Prelude);
      ExprPtr R = lowerExpr(*E.Rhs, Prelude);
      return Expr::binary(E.BOp, std::move(L), std::move(R));
    }
    case cl::ExprKind::Cond: {
      // t = cond ? a : b  ~>  if (cond) t = a; else t = b;  ... t
      // Lazy-branch evaluation is preserved: each arm's prelude lives in
      // its own branch.
      uint32_t T = freshTemp();
      ExprPtr C = lowerExpr(*E.Lhs, Prelude);
      std::vector<StmtPtr> ThenPre, ElsePre;
      ExprPtr A = lowerExpr(*E.Rhs, ThenPre);
      ExprPtr B = lowerExpr(*E.Third, ElsePre);
      StmtPtr ThenS = chain(std::move(ThenPre),
                            Stmt::assign(T, std::move(A), E.Loc));
      StmtPtr ElseS = chain(std::move(ElsePre),
                            Stmt::assign(T, std::move(B), E.Loc));
      Prelude.push_back(Stmt::ifThenElse(std::move(C), std::move(ThenS),
                                         std::move(ElseS), E.Loc));
      return Expr::temp(T);
    }
    }
    // Internal invariant: the switch above is ExprKind-exhaustive. The
    // constant fallback keeps NDEBUG builds safe.
    assert(false && "bad expression kind");
    return Expr::constant(0);
  }

  static StmtPtr chain(std::vector<StmtPtr> Prelude, StmtPtr Last) {
    StmtPtr Out = std::move(Last);
    for (auto It = Prelude.rbegin(); It != Prelude.rend(); ++It)
      Out = Stmt::seq(std::move(*It), std::move(Out), Out->Loc);
    return Out;
  }

  StmtPtr lowerStmt(const cl::Stmt &S) {
    switch (S.Kind) {
    case cl::StmtKind::Skip:
      return Stmt::skip(S.Loc);

    case cl::StmtKind::Assign: {
      std::vector<StmtPtr> Prelude;
      ExprPtr V = lowerExpr(*S.Value, Prelude);
      StmtPtr Store;
      switch (S.Dest.K) {
      case cl::LValue::Kind::Local:
        Store = Stmt::assign(tempOf(S.Dest.Name), std::move(V), S.Loc);
        break;
      case cl::LValue::Kind::Global:
        Store = Stmt::globStore(S.Dest.Name, std::move(V), S.Loc);
        break;
      case cl::LValue::Kind::ArrayElem: {
        ExprPtr Idx = lowerExpr(*S.Dest.Index, Prelude);
        Store = Stmt::arrayStore(S.Dest.Name, std::move(Idx), std::move(V),
                                 S.Loc);
        break;
      }
      }
      return chain(std::move(Prelude), std::move(Store));
    }

    case cl::StmtKind::Call: {
      std::vector<StmtPtr> Prelude;
      std::vector<ExprPtr> Args;
      for (const cl::ExprPtr &A : S.Args)
        Args.push_back(lowerExpr(*A, Prelude));
      bool HasDest = S.HasDest;
      uint32_t DestTemp = 0;
      StmtPtr Post;
      if (HasDest) {
        if (S.Dest.K == cl::LValue::Kind::Local) {
          DestTemp = tempOf(S.Dest.Name);
        } else {
          // Result into memory: route through a fresh temp.
          DestTemp = freshTemp();
          ExprPtr V = Expr::temp(DestTemp);
          if (S.Dest.K == cl::LValue::Kind::Global) {
            Post = Stmt::globStore(S.Dest.Name, std::move(V), S.Loc);
          } else {
            std::vector<StmtPtr> IdxPre;
            ExprPtr Idx = lowerExpr(*S.Dest.Index, IdxPre);
            // Index evaluation happens after the call in Clight's
            // assign-result step; preserve that order.
            Post = chain(std::move(IdxPre),
                         Stmt::arrayStore(S.Dest.Name, std::move(Idx),
                                          std::move(V), S.Loc));
          }
        }
      }
      StmtPtr CallS = Stmt::call(HasDest, DestTemp, S.Callee,
                                 std::move(Args), S.Loc);
      if (Post)
        CallS = Stmt::seq(std::move(CallS), std::move(Post), S.Loc);
      return chain(std::move(Prelude), std::move(CallS));
    }

    case cl::StmtKind::Seq:
      return Stmt::seq(lowerStmt(*S.First), lowerStmt(*S.Second), S.Loc);

    case cl::StmtKind::If: {
      std::vector<StmtPtr> Prelude;
      ExprPtr C = lowerExpr(*S.Value, Prelude);
      StmtPtr T = lowerStmt(*S.First);
      StmtPtr E = lowerStmt(*S.Second);
      return chain(std::move(Prelude),
                   Stmt::ifThenElse(std::move(C), std::move(T),
                                    std::move(E), S.Loc));
    }

    case cl::StmtKind::Loop:
      // loop S ~> block { loop { S' } }; break inside becomes exit 0,
      // crossing any loops transparently up to this block.
      return Stmt::block(Stmt::loop(lowerStmt(*S.First), S.Loc), S.Loc);

    case cl::StmtKind::Break:
      return Stmt::exit(0, S.Loc);

    case cl::StmtKind::Return: {
      if (!S.HasValue)
        return Stmt::retVoid(S.Loc);
      std::vector<StmtPtr> Prelude;
      ExprPtr V = lowerExpr(*S.Value, Prelude);
      return chain(std::move(Prelude), Stmt::ret(std::move(V), S.Loc));
    }
    }
    // Internal invariant: the switch above is StmtKind-exhaustive. The
    // Skip fallback keeps NDEBUG builds safe.
    assert(false && "bad statement kind");
    return Stmt::skip(S.Loc);
  }

  const cl::Function &Source;
  std::map<std::string, uint32_t> TempOf;
  uint32_t NextTemp = 0;
  uint32_t NumParams = 0;
};

} // namespace

Program qcc::cminor::lowerFromClight(const cl::Program &P) {
  Program Out;
  Out.Globals = P.Globals;
  Out.Externals = P.Externals;
  Out.EntryPoint = P.EntryPoint;
  for (const cl::Function &F : P.Functions)
    Out.Functions.push_back(FunctionLowering(F).run());
  return Out;
}
