//===- cminor/Cminor.cpp - Cminor intermediate language -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "cminor/Cminor.h"

using namespace qcc;
using namespace qcc::cminor;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Expr::constant(uint32_t V) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Const;
  E->IntValue = V;
  return E;
}

ExprPtr Expr::temp(uint32_t Index) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Temp;
  E->TempIndex = Index;
  return E;
}

ExprPtr Expr::globalLoad(std::string Name) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::GlobalLoad;
  E->Name = std::move(Name);
  return E;
}

ExprPtr Expr::arrayLoad(std::string Name, ExprPtr Index) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::ArrayLoad;
  E->Name = std::move(Name);
  E->Lhs = std::move(Index);
  return E;
}

ExprPtr Expr::unary(UnOp Op, ExprPtr Operand) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Unary;
  E->UOp = Op;
  E->Lhs = std::move(Operand);
  return E;
}

ExprPtr Expr::binary(BinOp Op, ExprPtr L, ExprPtr R) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Binary;
  E->BOp = Op;
  E->Lhs = std::move(L);
  E->Rhs = std::move(R);
  return E;
}

std::string Expr::str() const {
  switch (Kind) {
  case ExprKind::Const:
    return std::to_string(IntValue);
  case ExprKind::Temp:
    return "t" + std::to_string(TempIndex);
  case ExprKind::GlobalLoad:
    return Name;
  case ExprKind::ArrayLoad:
    return Name + "[" + Lhs->str() + "]";
  case ExprKind::Unary: {
    const char *Sp =
        UOp == UnOp::Neg ? "-" : UOp == UnOp::BoolNot ? "!" : "~";
    return std::string(Sp) + "(" + Lhs->str() + ")";
  }
  case ExprKind::Binary:
    return "(" + Lhs->str() + " " + clight::binOpSpelling(BOp) + " " +
           Rhs->str() + ")";
  }
  return "<bad expr>";
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Stmt::skip(SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Skip;
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::assign(uint32_t Temp, ExprPtr Value, SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Assign;
  S->TempIndex = Temp;
  S->Value = std::move(Value);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::globStore(std::string Name, ExprPtr Value, SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::GlobStore;
  S->Name = std::move(Name);
  S->Value = std::move(Value);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::arrayStore(std::string Name, ExprPtr Index, ExprPtr Value,
                         SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::ArrayStore;
  S->Name = std::move(Name);
  S->Addr = std::move(Index);
  S->Value = std::move(Value);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::call(bool HasDest, uint32_t DestTemp, std::string Callee,
                   std::vector<ExprPtr> Args, SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Call;
  S->HasDest = HasDest;
  S->TempIndex = DestTemp;
  S->Name = std::move(Callee);
  S->Args = std::move(Args);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::seq(StmtPtr S1, StmtPtr S2, SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Seq;
  S->First = std::move(S1);
  S->Second = std::move(S2);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::ifThenElse(ExprPtr Cond, StmtPtr Then, StmtPtr Else,
                         SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::If;
  S->Value = std::move(Cond);
  S->First = std::move(Then);
  S->Second = std::move(Else);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::loop(StmtPtr Body, SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Loop;
  S->First = std::move(Body);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::block(StmtPtr Body, SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Block;
  S->First = std::move(Body);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::exit(uint32_t Depth, SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Exit;
  S->ExitDepth = Depth;
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::retVoid(SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Return;
  S->HasValue = false;
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::ret(ExprPtr Value, SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Return;
  S->HasValue = true;
  S->Value = std::move(Value);
  S->Loc = Loc;
  return S;
}

std::string Stmt::str(unsigned Indent) const {
  std::string Pad(Indent * 2, ' ');
  switch (Kind) {
  case StmtKind::Skip:
    return Pad + "skip;\n";
  case StmtKind::Assign:
    return Pad + "t" + std::to_string(TempIndex) + " = " + Value->str() +
           ";\n";
  case StmtKind::GlobStore:
    return Pad + Name + " = " + Value->str() + ";\n";
  case StmtKind::ArrayStore:
    return Pad + Name + "[" + Addr->str() + "] = " + Value->str() + ";\n";
  case StmtKind::Call: {
    std::string Out = Pad;
    if (HasDest)
      Out += "t" + std::to_string(TempIndex) + " = ";
    Out += Name + "(";
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Args[I]->str();
    }
    return Out + ");\n";
  }
  case StmtKind::Seq:
    return First->str(Indent) + Second->str(Indent);
  case StmtKind::If:
    return Pad + "if (" + Value->str() + ") {\n" + First->str(Indent + 1) +
           Pad + "} else {\n" + Second->str(Indent + 1) + Pad + "}\n";
  case StmtKind::Loop:
    return Pad + "loop {\n" + First->str(Indent + 1) + Pad + "}\n";
  case StmtKind::Block:
    return Pad + "block {\n" + First->str(Indent + 1) + Pad + "}\n";
  case StmtKind::Exit:
    return Pad + "exit " + std::to_string(ExitDepth) + ";\n";
  case StmtKind::Return:
    return Pad + (HasValue ? "return " + Value->str() + ";\n" : "return;\n");
  }
  return Pad + "<bad stmt>\n";
}

//===----------------------------------------------------------------------===//
// Programs
//===----------------------------------------------------------------------===//

const Function *Program::findFunction(const std::string &Name) const {
  for (const Function &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const GlobalVar *Program::findGlobal(const std::string &Name) const {
  for (const GlobalVar &G : Globals)
    if (G.Name == Name)
      return &G;
  return nullptr;
}

const ExternalDecl *Program::findExternal(const std::string &Name) const {
  for (const ExternalDecl &E : Externals)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

std::string Program::str() const {
  std::string Out;
  for (const Function &F : Functions) {
    Out += "function " + F.Name + "(params " +
           std::to_string(F.NumParams) + ", temps " +
           std::to_string(F.NumTemps) + ") {\n";
    Out += F.Body->str(1);
    Out += "}\n";
  }
  return Out;
}
