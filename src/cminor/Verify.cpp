//===- cminor/Verify.cpp - Cminor well-formedness checks ------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "cminor/Verify.h"

#include <set>

using namespace qcc;
using namespace qcc::cminor;

namespace {

class Verifier {
public:
  Verifier(const Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  void run() {
    std::set<std::string> Seen;
    for (const GlobalVar &G : P.Globals)
      if (!Seen.insert(G.Name).second)
        Diags.error(G.Loc, "cminor: duplicate global '" + G.Name + "'");
    for (const ExternalDecl &E : P.Externals)
      if (!Seen.insert(E.Name).second)
        Diags.error(E.Loc, "cminor: duplicate declaration '" + E.Name + "'");
    for (const Function &F : P.Functions)
      if (!Seen.insert(F.Name).second)
        Diags.error(F.Loc, "cminor: duplicate function '" + F.Name + "'");

    const Function *Main = P.findFunction(P.EntryPoint);
    if (!Main)
      Diags.error(SourceLoc(), "cminor: entry point '" + P.EntryPoint +
                                   "' is not defined");
    else if (Main->NumParams != 0)
      Diags.error(Main->Loc, "cminor: entry point must take no parameters");

    for (const Function &F : P.Functions)
      verifyFunction(F);
  }

private:
  void verifyFunction(const Function &F) {
    Fn = &F;
    if (F.NumParams > F.NumTemps)
      Diags.error(F.Loc, "cminor: '" + F.Name + "' declares " +
                             std::to_string(F.NumParams) + " parameters in " +
                             std::to_string(F.NumTemps) + " temporaries");
    if (!F.Body) {
      Diags.error(F.Loc, "cminor: function '" + F.Name + "' has no body");
      return;
    }
    verifyStmt(*F.Body, /*BlockDepth=*/0);
  }

  void checkTemp(uint32_t Index, SourceLoc Loc) {
    if (Index >= Fn->NumTemps)
      Diags.error(Loc, "cminor: temporary t" + std::to_string(Index) +
                           " out of range in '" + Fn->Name + "' (" +
                           std::to_string(Fn->NumTemps) + " temps)");
  }

  const GlobalVar *checkGlobal(const std::string &Name, bool WantArray,
                               SourceLoc Loc) {
    const GlobalVar *G = P.findGlobal(Name);
    if (!G) {
      Diags.error(Loc, "cminor: unknown global '" + Name + "'");
      return nullptr;
    }
    if (G->IsArray != WantArray)
      Diags.error(Loc, WantArray
                           ? "cminor: subscript applied to scalar '" + Name +
                                 "'"
                           : "cminor: global array '" + Name +
                                 "' accessed without subscript");
    return G;
  }

  /// Requires a child node to be present; a missing child is a malformed
  /// node (e.g. a fault-injected one), not a semantic error.
  template <typename Ptr>
  bool present(const Ptr &E, const char *What, SourceLoc Loc) {
    if (E)
      return true;
    Diags.error(Loc, std::string("cminor: malformed node: missing ") + What);
    return false;
  }

  void verifyExpr(const Expr &E, SourceLoc Loc) {
    switch (E.Kind) {
    case ExprKind::Const:
      break;
    case ExprKind::Temp:
      checkTemp(E.TempIndex, Loc);
      break;
    case ExprKind::GlobalLoad:
      checkGlobal(E.Name, /*WantArray=*/false, Loc);
      break;
    case ExprKind::ArrayLoad:
      checkGlobal(E.Name, /*WantArray=*/true, Loc);
      if (present(E.Lhs, "array index", Loc))
        verifyExpr(*E.Lhs, Loc);
      break;
    case ExprKind::Unary:
      if (present(E.Lhs, "unary operand", Loc))
        verifyExpr(*E.Lhs, Loc);
      break;
    case ExprKind::Binary:
      if (present(E.Lhs, "left operand", Loc))
        verifyExpr(*E.Lhs, Loc);
      if (present(E.Rhs, "right operand", Loc))
        verifyExpr(*E.Rhs, Loc);
      break;
    }
  }

  void verifyStmt(const Stmt &S, uint32_t BlockDepth) {
    switch (S.Kind) {
    case StmtKind::Skip:
      break;
    case StmtKind::Assign:
      checkTemp(S.TempIndex, S.Loc);
      if (present(S.Value, "assigned value", S.Loc))
        verifyExpr(*S.Value, S.Loc);
      break;
    case StmtKind::GlobStore:
      checkGlobal(S.Name, /*WantArray=*/false, S.Loc);
      if (present(S.Value, "stored value", S.Loc))
        verifyExpr(*S.Value, S.Loc);
      break;
    case StmtKind::ArrayStore:
      checkGlobal(S.Name, /*WantArray=*/true, S.Loc);
      if (present(S.Addr, "array index", S.Loc))
        verifyExpr(*S.Addr, S.Loc);
      if (present(S.Value, "stored value", S.Loc))
        verifyExpr(*S.Value, S.Loc);
      break;
    case StmtKind::Call:
      verifyCall(S);
      break;
    case StmtKind::Seq:
      if (S.First)
        verifyStmt(*S.First, BlockDepth);
      if (S.Second)
        verifyStmt(*S.Second, BlockDepth);
      break;
    case StmtKind::If:
      if (present(S.Value, "branch condition", S.Loc))
        verifyExpr(*S.Value, S.Loc);
      if (S.First)
        verifyStmt(*S.First, BlockDepth);
      if (S.Second)
        verifyStmt(*S.Second, BlockDepth);
      break;
    case StmtKind::Loop:
      // Loops are transparent to exits: the body targets the same blocks.
      if (present(S.First, "loop body", S.Loc))
        verifyStmt(*S.First, BlockDepth);
      break;
    case StmtKind::Block:
      if (S.First)
        verifyStmt(*S.First, BlockDepth + 1);
      break;
    case StmtKind::Exit:
      // `exit n` terminates n+1 enclosing blocks, so it needs that many.
      if (S.ExitDepth >= BlockDepth)
        Diags.error(S.Loc, "cminor: exit " + std::to_string(S.ExitDepth) +
                               " with only " + std::to_string(BlockDepth) +
                               " enclosing block(s) in '" + Fn->Name + "'");
      break;
    case StmtKind::Return:
      if (S.HasValue != Fn->ReturnsValue)
        Diags.error(S.Loc, S.HasValue
                               ? "cminor: value return in void function '" +
                                     Fn->Name + "'"
                               : "cminor: void return in value function '" +
                                     Fn->Name + "'");
      if (S.HasValue && present(S.Value, "return value", S.Loc))
        verifyExpr(*S.Value, S.Loc);
      break;
    }
  }

  void verifyCall(const Stmt &S) {
    for (const ExprPtr &A : S.Args)
      if (present(A, "call argument", S.Loc))
        verifyExpr(*A, S.Loc);
    if (S.HasDest)
      checkTemp(S.TempIndex, S.Loc);
    if (const Function *Callee = P.findFunction(S.Name)) {
      if (Callee->NumParams != S.Args.size())
        Diags.error(S.Loc, "cminor: call to '" + S.Name + "' with " +
                               std::to_string(S.Args.size()) +
                               " argument(s), expects " +
                               std::to_string(Callee->NumParams));
      if (S.HasDest && !Callee->ReturnsValue)
        Diags.error(S.Loc, "cminor: result of void function '" + S.Name +
                               "' used");
      return;
    }
    if (const ExternalDecl *Ext = P.findExternal(S.Name)) {
      if (Ext->Arity != S.Args.size())
        Diags.error(S.Loc, "cminor: call to external '" + S.Name + "' with " +
                               std::to_string(S.Args.size()) +
                               " argument(s), expects " +
                               std::to_string(Ext->Arity));
      if (S.HasDest && !Ext->HasResult)
        Diags.error(S.Loc, "cminor: result of void external '" + S.Name +
                               "' used");
      return;
    }
    Diags.error(S.Loc, "cminor: call to unknown function '" + S.Name + "'");
  }

  const Program &P;
  DiagnosticEngine &Diags;
  const Function *Fn = nullptr;
};

} // namespace

bool qcc::cminor::verifyProgram(const Program &P, DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  Verifier(P, Diags).run();
  return Diags.errorCount() == Before;
}
