//===- incremental/Incremental.h - Function-granular verification -*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental verification engine: analysis, proof construction,
/// proof checking, and refinement replay keyed *per function* instead of
/// per translation unit, so a warm edit re-verifies only the edited
/// function and its transitive callers.
///
/// Keys and the invalidation graph
/// -------------------------------
/// Every function f gets a FuncKey: a dual 64-bit content hash over
///
///   * the TU environment (compiler flags, globals, externals, entry
///     point, seeded specifications),
///   * f's normalized Clight body (source locations excluded — moving a
///     function does not invalidate it),
///   * the *specifications* of f's direct callees, rendered canonically.
///
/// The third component is what makes reuse sound and the invalidation
/// graph implicit. The quantitative judgement {P} f {Q} depends on
/// exactly: f's body and the specs Gamma assigns f's callees (the
/// analyzer's DerivationBuilder consults nothing else). Since the
/// analyzer walks in callee-first topological order (analysis::CallGraph)
/// and B_f counts callee frames only — f's own frame M(f) is added *by
/// callers* through the CallBalanced rule — an edit to f's arithmetic
/// changes f's key but leaves f's derived spec equal, so every caller's
/// key re-computes identically and the invalidation stops at f (early
/// cutoff). An edit that changes f's spec (adding a call, deepening the
/// chain) changes each transitive caller's key in turn, which is
/// precisely "the edited function and its transitive callers re-verify".
/// Recursive functions are never analyzed automatically (they are seeded
/// or skipped), so a recursive SCC invalidates as a unit through its
/// members' shared seeded-spec hash; CallGraph::recursiveComponents()
/// names those units.
///
/// What a hit serves
/// -----------------
/// A FuncKey hit returns the serialized FunctionBound (spec + full
/// derivation, store/Serialize.h external form, statements as preorder
/// indices) written when the proof checker accepted that bound. The
/// derivation is re-attached to the *current* parse — the body hash
/// guarantees an identical statement preorder — so proof-artifact
/// emission (encodeProofs) and proof-node counts are bit-identical to a
/// cold run. Hits come from an in-process map first, then from the
/// persistent function store (store/FuncStore.h); per-TU manifests there
/// seed cross-process invalidation counting.
///
/// Whole-program phases (refinement replay, Theorem 1) cache under a
/// replay key covering the bodies of the *reachable-from-entry* function
/// set: execution traces at all five levels depend only on code that can
/// run, so an edit to an unreachable helper keeps the replay and
/// Theorem-1 outcomes. The Theorem-1 hit is additionally guarded by
/// stack-byte equality with the freshly computed bound.
///
/// The contract with the batch engine (batch::IncrementalEngine) is
/// bit-identity: verdicts, bounds, diagnostics, proof blobs, and
/// deterministic metrics equal verifyOne's for every job; only timings
/// and the incremental counters differ. Jobs the engine cannot key
/// soundly (RTL inlining splices callee bodies across function
/// boundaries; fault hooks corrupt IR behind the parse) fall back to
/// verifyOne wholesale.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_INCREMENTAL_INCREMENTAL_H
#define QCC_INCREMENTAL_INCREMENTAL_H

#include "batch/Batch.h"
#include "store/FuncStore.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace qcc {
namespace incremental {

/// Engine configuration.
struct EngineOptions {
  /// Directory for the persistent function store (records + per-TU
  /// manifests). Empty: in-process caching only.
  std::string FuncStoreDir;
  /// In-process per-function record cap; the map is cleared wholesale
  /// when full (records are tiny; re-misses refill from disk).
  size_t MaxCachedFunctions = 16384;
  /// In-process replay-entry cap, same coarse policy.
  size_t MaxReplayEntries = 4096;
};

/// Cumulative engine counters (across all jobs served).
struct EngineStats {
  uint64_t Jobs = 0;            ///< verify() calls served incrementally.
  uint64_t FallbackJobs = 0;    ///< Dispatched to verifyOne (inline/hooks).
  uint64_t FuncsReused = 0;     ///< Checked bounds served from a key hit.
  uint64_t FuncsReVerified = 0; ///< Bounds derived and checked fresh.
  uint64_t FuncsInvalidated = 0;///< Manifest entries whose key changed.
  uint64_t ReplayHits = 0;      ///< Whole-program replay/T1 cache hits.
  uint64_t ReplayMisses = 0;
};

/// The function-granular engine. Thread-safe: one instance may serve
/// every worker of a batch run or daemon concurrently.
class Engine : public batch::IncrementalEngine {
public:
  explicit Engine(EngineOptions Options = {});
  ~Engine() override;

  batch::ProgramResult verify(const batch::BatchJob &Job, bool CheckTheorem1,
                              Supervisor *Sup,
                              bool KeepProofArtifacts) override;

  EngineStats stats() const;

  /// Counters of the persistent function store; zeros when none is open.
  store::FuncStoreStats storeStats() const;

  /// Drops every in-process cache (not the on-disk store). Tests use it
  /// to separate in-memory from cross-process reuse.
  void clearMemory();

private:
  friend class JobSpecCache;

  struct ReplayEntry;

  /// In-process record lookup, falling through to the function store.
  std::optional<std::string> fetchRecord(const store::FuncKey &Key);
  void putRecord(const store::FuncKey &Key, const std::string &Record);

  EngineOptions Opts;
  std::unique_ptr<store::FuncStore> Disk; ///< Null without FuncStoreDir.

  mutable std::mutex M;
  std::map<store::FuncKey, std::string> FuncCache;
  std::map<std::pair<uint64_t, uint64_t>, std::shared_ptr<ReplayEntry>>
      ReplayCache;
  /// Last-run manifest per TU (hash of job id), seeded from the on-disk
  /// manifest on first sight; diffed to count invalidations.
  std::map<uint64_t, store::TuManifest> PrevManifests;
  EngineStats Counters;
};

} // namespace incremental
} // namespace qcc

#endif // QCC_INCREMENTAL_INCREMENTAL_H
