//===- incremental/Incremental.cpp - Function-granular verification ------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "incremental/Incremental.h"

#include "analysis/CallGraph.h"
#include "store/Serialize.h"
#include "support/Arena.h"
#include "support/Hash.h"

#include <chrono>
#include <set>

using namespace qcc;
using namespace qcc::incremental;

//===----------------------------------------------------------------------===//
// Content hashing (bodies, environments, replay keys)
//===----------------------------------------------------------------------===//

namespace {

/// The canonical rendering the whole-TU store also keys specs by: bound
/// expressions are immutable trees with a stable printer, so equal
/// renderings mean equal specifications.
std::string specText(const logic::FunctionSpec &S) {
  std::string Out = S.Pre->str() + " -> " + S.Post->str();
  for (const logic::Cmp &C : S.ResultFacts)
    Out += " ; " + C.str();
  return Out;
}

/// Expressions are shallow (no statement nesting); recursion is fine.
/// Source locations are deliberately excluded everywhere: moving or
/// reformatting a function must not invalidate it.
void hashExpr(Hash128 &H, const clight::Expr *E) {
  if (!E) {
    H.u64(0);
    return;
  }
  H.u64(1 + static_cast<uint64_t>(E->Kind));
  switch (E->Kind) {
  case clight::ExprKind::IntConst:
    H.u64(E->IntValue);
    break;
  case clight::ExprKind::LocalRead:
  case clight::ExprKind::GlobalRead:
    H.str(E->Name);
    break;
  case clight::ExprKind::ArrayRead:
    H.str(E->Name);
    hashExpr(H, E->Lhs.get());
    break;
  case clight::ExprKind::Unary:
    H.u64(static_cast<uint64_t>(E->UOp));
    hashExpr(H, E->Lhs.get());
    break;
  case clight::ExprKind::Binary:
    H.u64(static_cast<uint64_t>(E->BOp));
    hashExpr(H, E->Lhs.get());
    hashExpr(H, E->Rhs.get());
    break;
  case clight::ExprKind::Cond:
    hashExpr(H, E->Lhs.get());
    hashExpr(H, E->Rhs.get());
    hashExpr(H, E->Third.get());
    break;
  }
}

void hashLValue(Hash128 &H, const clight::LValue &LV) {
  H.u64(static_cast<uint64_t>(LV.K));
  H.str(LV.Name);
  hashExpr(H, LV.Index.get());
}

/// Statements can nest arbitrarily deep (long Seq chains), so the walk is
/// iterative with an arena-backed work list — this is the engine's hot
/// path, run for every function of every job.
void hashStmt(Hash128 &H, const clight::Stmt *Root, Arena &A) {
  struct Work {
    const clight::Stmt *S;
    Work *Next;
  };
  auto Push = [&A](Work *Top, const clight::Stmt *S) {
    Work *W = static_cast<Work *>(A.alloc(sizeof(Work), alignof(Work)));
    W->S = S;
    W->Next = Top;
    return W;
  };
  Work *Top = Push(nullptr, Root);
  while (Top) {
    const clight::Stmt *S = Top->S;
    Top = Top->Next;
    if (!S) {
      H.u64(0);
      continue;
    }
    H.u64(0x100 + static_cast<uint64_t>(S->Kind));
    H.boolean(S->HasDest);
    if (S->HasDest)
      hashLValue(H, S->Dest);
    hashExpr(H, S->Value.get());
    H.boolean(S->HasValue);
    H.str(S->Callee);
    H.u64(S->Args.size());
    for (const clight::ExprPtr &Arg : S->Args)
      hashExpr(H, Arg.get());
    // Null children are hashed as markers, so the (kind, child-presence)
    // stream is injective on tree shape. Second pushed first: preorder.
    Top = Push(Top, S->Second.get());
    Top = Push(Top, S->First.get());
  }
}

/// Everything of one function the analyzer can observe besides Gamma:
/// parameters (bounds may be parametric over them), locals, signedness,
/// the return convention, and the body.
void hashFunction(Hash128 &H, const clight::Function &F, Arena &A) {
  H.u64(F.Params.size());
  for (const std::string &P : F.Params)
    H.str(P);
  H.u64(F.Locals.size());
  for (const std::string &L : F.Locals)
    H.str(L);
  H.u64(F.VarSigns.size());
  for (const auto &[Name, Sign] : F.VarSigns)
    H.str(Name).u64(static_cast<uint64_t>(Sign));
  H.boolean(F.ReturnsValue);
  hashStmt(H, F.Body.get(), A);
}

/// The TU-level facts a *derivation* can depend on beyond the function's
/// own body and its callees' specs: globals (array sizes, signedness,
/// initializers), externals, the entry point, the defines that shaped the
/// parse, and every seeded specification. Compiler flags are excluded —
/// the analyzer reads only Clight, so a fuel or optimization change must
/// not invalidate checked bounds (retries at reduced fuel still reuse).
Hash128 analysisEnvHash(const clight::Program &P,
                        const driver::CompilerOptions &O) {
  Hash128 H;
  H.u64(O.Defines.size());
  for (const auto &[Name, Value] : O.Defines)
    H.str(Name).u64(Value);
  H.u64(P.Globals.size());
  for (const clight::GlobalVar &G : P.Globals) {
    H.str(G.Name).boolean(G.IsArray).u64(G.Size);
    H.u64(static_cast<uint64_t>(G.Sign));
    H.u64(G.Init.size());
    for (uint32_t V : G.Init)
      H.u64(V);
  }
  H.u64(P.Externals.size());
  for (const clight::ExternalDecl &E : P.Externals)
    H.str(E.Name).u64(E.Arity).boolean(E.HasResult);
  H.str(P.EntryPoint);
  H.u64(O.SeededSpecs.size());
  for (const auto &[F, Spec] : O.SeededSpecs)
    H.str(F).str(specText(Spec));
  return H;
}

/// The whole-program replay environment: everything that can influence
/// the five-level traces or the Theorem-1 run — all lowering flags and
/// fuel on top of the analysis environment (minus seeded specs, whose
/// only run-time influence, the Theorem-1 stack size, is guarded by
/// explicit equality on the cached entry).
Hash128 replayEnvHash(const clight::Program &P,
                      const driver::CompilerOptions &O) {
  Hash128 H;
  H.u64(O.Defines.size());
  for (const auto &[Name, Value] : O.Defines)
    H.str(Name).u64(Value);
  H.boolean(O.Optimize)
      .boolean(O.TailCalls)
      .boolean(O.ValidateTranslation)
      .boolean(O.AnalyzeBounds)
      .u64(O.ValidationFuel);
  H.u64(P.Globals.size());
  for (const clight::GlobalVar &G : P.Globals) {
    H.str(G.Name).boolean(G.IsArray).u64(G.Size);
    H.u64(static_cast<uint64_t>(G.Sign));
    H.u64(G.Init.size());
    for (uint32_t V : G.Init)
      H.u64(V);
  }
  H.u64(P.Externals.size());
  for (const clight::ExternalDecl &E : P.Externals)
    H.str(E.Name).u64(E.Arity).boolean(E.HasResult);
  H.str(P.EntryPoint);
  return H;
}

/// The functions whose code can execute: the entry point's transitive
/// callee closure. Execution traces at every level — and therefore the
/// refinement-replay and Theorem-1 outcomes — depend only on this set,
/// which is what lets an edit to an unreachable helper keep the cached
/// whole-program results. Conservative fallback: no entry function, all
/// functions count.
std::set<std::string> reachableSet(const clight::Program &P,
                                   const analysis::CallGraph &CG) {
  std::set<std::string> Seen;
  if (!P.findFunction(P.EntryPoint)) {
    for (const clight::Function &F : P.Functions)
      Seen.insert(F.Name);
    return Seen;
  }
  std::vector<std::string> Work{P.EntryPoint};
  Seen.insert(P.EntryPoint);
  while (!Work.empty()) {
    std::string N = std::move(Work.back());
    Work.pop_back();
    for (const std::string &C : CG.callees(N))
      if (Seen.insert(C).second)
        Work.push_back(C);
  }
  return Seen;
}

uint64_t microsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

} // namespace

//===----------------------------------------------------------------------===//
// The replay entry
//===----------------------------------------------------------------------===//

/// One cached whole-program outcome: the translation-validation verdict
/// with its exact diagnostics and replay-event counts, and (when a run
/// got that far definitively) the Theorem-1 outcome. Only definitive
/// results are ever stored — a budget-stopped phase re-runs fresh.
struct Engine::ReplayEntry {
  bool ValidationRan = false; ///< Validation verdict populated.
  bool ValidationOk = false;
  /// The diagnostics validation emitted, replayed verbatim (structured,
  /// so re-emission renders byte-identically to the cold run).
  std::vector<Diagnostic> ValidationDiags;
  std::vector<std::pair<std::string, uint64_t>> Events;
  bool HasT1 = false; ///< Theorem-1 outcome populated.
  uint32_t T1StackBytes = 0;
  bool T1Ok = false;
  std::string T1Error;
};

//===----------------------------------------------------------------------===//
// The per-job SpecCache implementation
//===----------------------------------------------------------------------===//

namespace qcc {
namespace incremental {

/// The analyzer-facing cache for one job: computes each function's key at
/// lookup time (when Gamma already holds its callees' specs), serves
/// records from the engine, and serializes freshly checked bounds back.
/// Job-local and single-threaded (one analyzer walk); the engine behind
/// it is shared and locked.
class JobSpecCache : public analysis::SpecCache {
public:
  JobSpecCache(Engine &E, const analysis::CallGraph &CG,
               const std::map<std::string, std::pair<uint64_t, uint64_t>> &BH,
               uint64_t EnvPrimary, uint64_t EnvVerify)
      : E(E), CG(CG), BodyHashes(BH), EnvPrimary(EnvPrimary),
        EnvVerify(EnvVerify) {}

  std::optional<analysis::ReusedBound>
  lookup(const std::string &Name, const clight::Function &F,
         const logic::FunctionContext &Gamma) override {
    Hash128 H;
    H.u64(EnvPrimary).u64(EnvVerify);
    auto BIt = BodyHashes.find(Name);
    if (BIt == BodyHashes.end())
      return std::nullopt;
    H.u64(BIt->second.first).u64(BIt->second.second);
    // The callee-spec component: the only Gamma entries the derivation of
    // this function can mention. Rendered, not hashed structurally, so an
    // arithmetic edit in a callee that re-derives the *same* spec leaves
    // this function's key unchanged — the early-cutoff property.
    for (const std::string &Callee : CG.callees(Name)) {
      H.str(Callee);
      auto GIt = Gamma.find(Callee);
      H.str(GIt == Gamma.end() ? std::string("<none>")
                               : specText(GIt->second));
    }
    store::FuncKey Key{H.primary(), H.verify()};
    Keys[Name] = Key;
    Bodies[Name] = &F;
    std::optional<std::string> Record = E.fetchRecord(Key);
    if (!Record)
      return std::nullopt;
    // Equal body hash implies an identical statement preorder, so the
    // stored indices re-attach against the current parse. The record is
    // validated by decoding straight into a scratch forest — no pointer
    // tree is ever rebuilt on the warm path — and its raw bytes ride
    // along for zero-copy proof-blob emission. Any decode failure
    // (foreign bytes, depth bomb) degrades to a fresh analysis.
    std::vector<const clight::Stmt *> Stmts =
        store::preorderStatements(F.Body.get());
    store::ByteReader R(*Record);
    logic::FunctionSpec Spec;
    if (!store::readSpec(R, Spec))
      return std::nullopt;
    logic::DerivationForest Scratch;
    uint32_t Root;
    if (!store::readDerivationForest(R, Scratch, Root, &Stmts) || !R.done())
      return std::nullopt;
    analysis::ReusedBound RB;
    RB.Spec = std::move(Spec);
    RB.ProofNodes = Scratch.numNodes();
    RB.Record = std::move(*Record);
    return RB;
  }

  void fresh(const std::string &Name,
             const logic::FunctionBound &FB) override {
    auto KIt = Keys.find(Name);
    auto BIt = Bodies.find(Name);
    if (KIt == Keys.end() || BIt == Bodies.end() || !FB.Body)
      return; // fresh() without a preceding lookup: nothing to key by.
    std::vector<const clight::Stmt *> Stmts =
        store::preorderStatements(BIt->second->Body.get());
    std::map<const clight::Stmt *, uint32_t> Index;
    for (uint32_t I = 0; I != Stmts.size(); ++I)
      Index[Stmts[I]] = I;
    store::ByteWriter W;
    store::writeSpec(W, FB.Spec);
    if (!store::writeDerivation(W, *FB.Body, Index))
      return;
    E.putRecord(KIt->second, W.take());
  }

  /// Every key computed this job (analyzed candidates), for the manifest.
  const std::map<std::string, store::FuncKey> &keys() const { return Keys; }

private:
  Engine &E;
  const analysis::CallGraph &CG;
  const std::map<std::string, std::pair<uint64_t, uint64_t>> &BodyHashes;
  uint64_t EnvPrimary, EnvVerify;
  std::map<std::string, store::FuncKey> Keys;
  std::map<std::string, const clight::Function *> Bodies;
};

} // namespace incremental
} // namespace qcc

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

Engine::Engine(EngineOptions Options) : Opts(std::move(Options)) {
  if (!Opts.FuncStoreDir.empty()) {
    Disk = std::make_unique<store::FuncStore>(Opts.FuncStoreDir);
    if (!Disk->valid())
      Disk.reset(); // degrade to in-process caching, never fail the job
  }
}

Engine::~Engine() = default;

std::optional<std::string> Engine::fetchRecord(const store::FuncKey &Key) {
  {
    std::lock_guard<std::mutex> G(M);
    auto It = FuncCache.find(Key);
    if (It != FuncCache.end())
      return It->second;
  }
  if (!Disk)
    return std::nullopt;
  std::optional<std::string> Record = Disk->fetchFunc(Key);
  if (Record) {
    std::lock_guard<std::mutex> G(M);
    if (FuncCache.size() >= Opts.MaxCachedFunctions)
      FuncCache.clear(); // coarse, rare; disk refills on re-miss
    FuncCache.emplace(Key, *Record);
  }
  return Record;
}

void Engine::putRecord(const store::FuncKey &Key, const std::string &Record) {
  {
    std::lock_guard<std::mutex> G(M);
    if (FuncCache.size() >= Opts.MaxCachedFunctions)
      FuncCache.clear();
    FuncCache[Key] = Record;
  }
  if (Disk)
    Disk->putFunc(Key, Record);
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> G(M);
  return Counters;
}

store::FuncStoreStats Engine::storeStats() const {
  return Disk ? Disk->stats() : store::FuncStoreStats{};
}

void Engine::clearMemory() {
  std::lock_guard<std::mutex> G(M);
  FuncCache.clear();
  ReplayCache.clear();
  PrevManifests.clear();
}

batch::ProgramResult Engine::verify(const batch::BatchJob &Job,
                                    bool CheckTheorem1, Supervisor *Sup,
                                    bool KeepProofArtifacts) {
  // Jobs the per-function keys cannot describe soundly take the
  // whole-file path: RTL inlining splices callee bodies across function
  // boundaries (a callee edit changes the *caller's* compiled code
  // without changing the caller's Clight), and fault hooks mutate IR
  // behind the parse.
  if (Job.Options.Inline || Job.Options.FaultHook) {
    {
      std::lock_guard<std::mutex> G(M);
      ++Counters.FallbackJobs;
    }
    return batch::verifyOne(Job, CheckTheorem1, Sup, KeepProofArtifacts);
  }

  auto Start = std::chrono::steady_clock::now();
  batch::ProgramResult R;
  R.Id = Job.Id;
  {
    std::lock_guard<std::mutex> G(M);
    ++Counters.Jobs;
  }

  DiagnosticEngine Diags;
  driver::PassStats Stats;
  driver::CompilerOptions Opt = Job.Options;
  Opt.Supervision = Sup;
  Arena Scratch; // per-job scratch; high water is tracked process-wide

  auto Finalize = [&] {
    R.Status = R.Stop == StopCause::None
                   ? (R.Ok ? batch::JobStatus::Ok : batch::JobStatus::Failed)
                   : (R.Stop == StopCause::Cancelled
                          ? batch::JobStatus::Cancelled
                          : batch::JobStatus::Quarantined);
    R.Diagnostics = Diags.str();
    R.Metrics.PassMicros = std::move(Stats.PassMicros);
    R.Metrics.ReplayedEvents = std::move(Stats.ReplayedEvents);
    R.Metrics.ProofNodes = Stats.ProofNodes;
    R.Metrics.ProofCheckMicros = Stats.ProofCheckMicros;
    R.Metrics.ProofRuleNodes = std::move(Stats.ProofRuleNodes);
    logic::InternStats IS = logic::internStats();
    R.Metrics.InternedBounds = IS.BoundNodes + IS.TermNodes;
    R.Metrics.ArenaHighWater = arenaHighWater();
    R.Metrics.TotalMicros = microsSince(Start);
  };

  // Lowering runs fresh on every job: it is the cheap half of the
  // pipeline, and re-deriving the cost metric from the actual Mach
  // frames keeps every reused bound grounded in this binary, not a
  // remembered one.
  std::optional<driver::Compilation> Lowered =
      driver::lowerPipeline(Job.Source, Diags, Opt, &Stats);
  if (!Lowered) {
    if (Sup && Sup->stopRequested())
      R.Stop = Sup->cause();
    Finalize();
    return R;
  }
  driver::Compilation C = std::move(*Lowered);

  analysis::CallGraph CG(C.Clight);
  std::map<std::string, std::pair<uint64_t, uint64_t>> BodyHashes;
  for (const clight::Function &F : C.Clight.Functions) {
    Hash128 H;
    hashFunction(H, F, Scratch);
    Scratch.reset();
    BodyHashes[F.Name] = {H.primary(), H.verify()};
  }
  Hash128 AEnv = analysisEnvHash(C.Clight, Opt);

  // The whole-program replay key: environment + the bodies of every
  // reachable function.
  Hash128 RH = replayEnvHash(C.Clight, Opt);
  RH.boolean(CheckTheorem1);
  for (const std::string &N : reachableSet(C.Clight, CG)) {
    RH.str(N);
    auto It = BodyHashes.find(N);
    if (It != BodyHashes.end())
      RH.u64(It->second.first).u64(It->second.second);
  }
  std::pair<uint64_t, uint64_t> RKey{RH.primary(), RH.verify()};

  std::shared_ptr<ReplayEntry> Hit;
  {
    std::lock_guard<std::mutex> G(M);
    auto It = ReplayCache.find(RKey);
    if (It != ReplayCache.end())
      Hit = It->second;
    ++(Hit ? Counters.ReplayHits : Counters.ReplayMisses);
  }
  std::shared_ptr<ReplayEntry> Fresh; // entry (re)inserted at the end
  auto Insert = [&] {
    if (!Fresh)
      return;
    std::lock_guard<std::mutex> G(M);
    if (ReplayCache.size() >= Opts.MaxReplayEntries)
      ReplayCache.clear();
    ReplayCache[RKey] = Fresh;
  };

  bool ValidationFailed = false;
  if (Opt.ValidateTranslation) {
    if (Hit && Hit->ValidationRan) {
      Stats.PassMicros.emplace_back("validate", 0);
      Stats.ReplayedEvents = Hit->Events;
      for (const Diagnostic &D : Hit->ValidationDiags) {
        switch (D.Kind) {
        case DiagKind::Error:
          Diags.error(D.Loc, D.Message);
          break;
        case DiagKind::Warning:
          Diags.warning(D.Loc, D.Message);
          break;
        case DiagKind::Note:
          Diags.note(D.Loc, D.Message);
          break;
        }
      }
      ValidationFailed = !Hit->ValidationOk;
    } else {
      DiagnosticEngine VDiags;
      bool Ok = driver::validateTranslation(C, VDiags, Opt, &Stats);
      Diags.append(VDiags);
      bool Stopped = Sup && Sup->stopRequested();
      if (!Stopped) {
        // Definitive (pass or refute) — cacheable either way.
        Fresh = std::make_shared<ReplayEntry>();
        if (Hit)
          *Fresh = *Hit; // keep a T1 part a prior run may have left
        Fresh->ValidationRan = true;
        Fresh->ValidationOk = Ok;
        Fresh->ValidationDiags = VDiags.diagnostics();
        Fresh->Events = Stats.ReplayedEvents;
      }
      if (!Ok && Stopped) {
        R.Stop = Sup->cause();
        Finalize();
        return R;
      }
      ValidationFailed = !Ok;
    }
  }
  if (ValidationFailed) {
    // Mirrors the cold driver: a failed validation withholds bounds,
    // analysis, and Theorem 1 entirely.
    Insert();
    Finalize();
    return R;
  }

  JobSpecCache SC(*this, CG, BodyHashes, AEnv.primary(), AEnv.verify());
  if (Opt.AnalyzeBounds) {
    auto T0 = std::chrono::steady_clock::now();
    C.Bounds = analysis::analyzeProgram(C.Clight, Diags,
                                        std::move(Opt.SeededSpecs), Sup, &SC);
    Stats.PassMicros.emplace_back("analyze", microsSince(T0));
    // Proof-node accounting covers reused bounds too: record decoding
    // preserves derivation size, so warm and cold counts agree.
    Stats.ProofNodes += C.Bounds.proofNodeCount();
    Stats.ProofCheckMicros += C.Bounds.ProofCheckMicros;
    for (unsigned I = 0; I != logic::NumRules; ++I)
      if (C.Bounds.ProofRuleNodes[I])
        Stats.ProofRuleNodes.emplace_back(
            logic::ruleName(static_cast<logic::Rule>(I)),
            C.Bounds.ProofRuleNodes[I]);
    if (Sup && Sup->stopRequested()) {
      R.Stop = Sup->cause();
      Insert();
      Finalize();
      return R;
    }

    // Incremental bookkeeping: the manifest of this TU (keys every
    // checked function verified under) vs. the previous run's.
    uint64_t TuHash = Hash128().str(Job.Id).primary();
    store::TuManifest Current;
    auto AddKey = [&](const std::string &Name) {
      auto KIt = SC.keys().find(Name);
      if (KIt != SC.keys().end())
        Current.emplace(Name, KIt->second);
    };
    for (const auto &[Name, FB] : C.Bounds.Bounds)
      AddKey(Name);
    for (const auto &[Name, RB] : C.Bounds.Reused)
      AddKey(Name);
    // Fresh bounds are exactly Bounds now; cache hits live in Reused.
    for (const auto &[Name, FB] : C.Bounds.Bounds)
      R.Metrics.ReVerifiedFunctions.push_back(Name); // map order: sorted
    R.Metrics.FuncsReused = C.Bounds.Reused.size();
    R.Metrics.FuncsReVerified = R.Metrics.ReVerifiedFunctions.size();
    {
      std::lock_guard<std::mutex> G(M);
      auto PIt = PrevManifests.find(TuHash);
      if (PIt == PrevManifests.end() && Disk) {
        // First sight of this TU in-process: a manifest a previous
        // process left behind seeds cross-run invalidation counting.
        if (std::optional<store::TuManifest> Prev =
                Disk->fetchManifest(TuHash))
          PIt = PrevManifests.emplace(TuHash, std::move(*Prev)).first;
      }
      if (PIt != PrevManifests.end())
        for (const auto &[Name, Key] : PIt->second) {
          auto CIt = Current.find(Name);
          if (CIt == Current.end() || CIt->second != Key)
            ++R.Metrics.FuncsInvalidated;
        }
      PrevManifests[TuHash] = Current;
      Counters.FuncsReused += R.Metrics.FuncsReused;
      Counters.FuncsReVerified += R.Metrics.FuncsReVerified;
      Counters.FuncsInvalidated += R.Metrics.FuncsInvalidated;
    }
    if (Disk)
      Disk->putManifest(TuHash, Current);
  }

  R.Ok = true;
  for (const auto &[F, Spec] : C.Bounds.Gamma) {
    batch::FunctionReport FR;
    FR.Function = F;
    if (logic::BoundExpr B = C.Bounds.callBound(F))
      FR.SymbolicBound = B->str();
    FR.ConcreteBytes = driver::concreteCallBound(C, F);
    R.Bounds.push_back(std::move(FR));
  }
  R.SkippedRecursive = C.Bounds.SkippedRecursive;
  if (KeepProofArtifacts) {
    // Fresh bounds serialize from the flat form the checker walked;
    // reused records splice in as the exact bytes the store validated —
    // the blob stays byte-identical to a cold analysis of the same
    // program, with no tree rebuild on the warm path.
    std::map<std::string, const std::string *> ReusedRecs =
        C.Bounds.reusedRecords();
    R.ProofBlob = store::encodeProofsForest(C.Bounds.Gamma, C.Bounds.Forest,
                                            C.Clight, &ReusedRecs);
  }

  if (CheckTheorem1) {
    auto MainBound = driver::concreteCallBound(C, "main");
    if (MainBound && *MainBound >= 4) {
      R.Theorem1Checked = true;
      R.Theorem1StackBytes = static_cast<uint32_t>(*MainBound - 4);
      // Belt and braces on the cached run: serve it only when the stack
      // size it executed at equals the freshly derived bound's.
      if (Hit && Hit->HasT1 && Hit->T1StackBytes == R.Theorem1StackBytes) {
        R.Theorem1Ok = Hit->T1Ok;
        if (!Hit->T1Ok) {
          R.Ok = false;
          Diags.error(SourceLoc(),
                      "Theorem 1 violated at stack size " +
                          std::to_string(R.Theorem1StackBytes) + ": " +
                          Hit->T1Error);
        }
      } else {
        measure::Measurement Meas = driver::runWithStackSize(
            C, R.Theorem1StackBytes, Opt.ValidationFuel * 10, Sup);
        R.Theorem1Ok = Meas.Ok;
        if (!Meas.Ok) {
          R.Ok = false;
          if (Meas.Stop != StopCause::None) {
            R.Stop = Meas.Stop;
            Diags.error(SourceLoc(),
                        std::string("Theorem 1 check stopped: ") +
                            stopCauseName(Meas.Stop));
          } else {
            Diags.error(SourceLoc(),
                        "Theorem 1 violated at stack size " +
                            std::to_string(R.Theorem1StackBytes) + ": " +
                            Meas.Error);
          }
        }
        if (Meas.Ok || Meas.Stop == StopCause::None) {
          // Definitive: record (or augment) the entry's Theorem-1 part.
          if (!Fresh) {
            Fresh = std::make_shared<ReplayEntry>();
            if (Hit)
              *Fresh = *Hit;
          }
          Fresh->HasT1 = true;
          Fresh->T1StackBytes = R.Theorem1StackBytes;
          Fresh->T1Ok = Meas.Ok;
          Fresh->T1Error = Meas.Ok ? std::string() : Meas.Error;
        }
      }
    }
  }

  Insert();
  Finalize();
  return R;
}
