//===- x86/Verify.cpp - Assembly well-formedness checks -------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "x86/Verify.h"

#include <set>

using namespace qcc;
using namespace qcc::x86;

bool qcc::x86::verifyProgram(const Program &P, DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  auto Bad = [&Diags](const std::string &Message) {
    Diags.error(SourceLoc(), "asm: " + Message);
  };

  // Global data layout: the machine images memory by plain offset
  // arithmetic, so every extent must sit inside the declared block.
  if (P.GlobalSize > MaxGlobalBytes)
    Bad("global data image of " + std::to_string(P.GlobalSize) +
        " bytes exceeds the limit (" + std::to_string(MaxGlobalBytes) + ")");
  if (P.GlobalBase % 4 != 0 ||
      P.GlobalBase + static_cast<uint64_t>(P.GlobalSize) > 0x7fff0000u)
    Bad("global data block [base " + std::to_string(P.GlobalBase) + ", size " +
        std::to_string(P.GlobalSize) + "] is misaligned or collides with "
        "the stack region");
  std::set<std::string> SeenGlobals;
  for (const GlobalLayout &G : P.Globals) {
    if (!SeenGlobals.insert(G.Name).second)
      Bad("duplicate global '" + G.Name + "'");
    if (G.Address % 4 != 0 || G.Address < P.GlobalBase ||
        static_cast<uint64_t>(G.Address) - P.GlobalBase + G.SizeBytes >
            P.GlobalSize)
      Bad("global '" + G.Name + "' lies outside the data block");
    if (static_cast<uint64_t>(G.Init.size()) * 4 > G.SizeBytes)
      Bad("initializer of global '" + G.Name + "' exceeds its size");
  }

  std::set<std::string> Defined;
  for (const AsmFunction &F : P.Functions)
    if (!Defined.insert(F.Name).second)
      Bad("duplicate function '" + F.Name + "'");
  if (!Defined.count(P.EntryPoint))
    Bad("entry point '" + P.EntryPoint + "' is not defined");

  for (const AsmFunction &F : P.Functions) {
    std::set<uint32_t> Labels;
    for (const Instr &I : F.Code)
      if (I.K == InstrKind::Label)
        Labels.insert(I.Imm);
    for (size_t Pc = 0; Pc != F.Code.size(); ++Pc) {
      const Instr &I = F.Code[Pc];
      switch (I.K) {
      case InstrKind::Jmp:
      case InstrKind::TestJnz:
        if (!Labels.count(I.Imm))
          Bad("branch to undefined label L" + std::to_string(I.Imm) + " in '" +
              F.Name + "' at " + std::to_string(Pc));
        break;
      case InstrKind::CallDirect:
      case InstrKind::TailJmp:
        // The linker resolves these against defined functions only;
        // external I/O goes through CallExternal.
        if (!Defined.count(I.Name))
          Bad("call to undefined function '" + I.Name + "' in '" + F.Name +
              "' at " + std::to_string(Pc));
        break;
      default:
        break;
      }
    }
  }
  return Diags.errorCount() == Before;
}
