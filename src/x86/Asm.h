//===- x86/Asm.h - x86-32 subset assembly -----------------------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The target assembly language: a subset of x86-32 with the *stack-merged*
/// memory discipline of the paper's ASM_sz (section 3.2):
///
///   * one contiguous stack block of sz + 4 bytes is preallocated; ESP
///     always points into it; there are no Pallocframe/Pfreeframe pseudo
///     instructions — frames are allocated by `sub esp, SF(f)` and freed
///     by `add esp, SF(f)` (pure pointer arithmetic),
///   * `call` pushes a 4-byte return address, `ret` pops it,
///   * any access below the stack block traps: stack overflow is real,
///   * function arguments are read at [esp + SF(f) + 4 + 4*i] — directly
///     in the caller's frame, no back link (paper section 3.2).
///
/// Fidelity notes (documented deviations, DESIGN.md): ALU instructions
/// use a liberal encoding — three-operand compare-and-set (`cmp`+`setcc`+
/// `movzx` fused), shift counts in any register, and division as a
/// trapping two-operand macro — because the paper's claims concern the
/// stack discipline, not instruction encodings.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_X86_ASM_H
#define QCC_X86_ASM_H

#include "events/Metric.h"
#include "events/Trace.h"
#include "mach/Mach.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qcc {
namespace x86 {

/// The eight 32-bit registers. EBP serves as the emission scratch (no
/// frame pointer is needed in the stack-merged discipline).
enum class Reg : uint8_t { EAX, EBX, ECX, EDX, ESI, EDI, ESP, EBP };

const char *regName(Reg R);

/// Two-address ALU operations (dst = dst op src).
enum class AluOp : uint8_t { Add, Sub, Imul, And, Or, Xor };

/// Shift operations (dst = dst shift count).
enum class ShiftOp : uint8_t { Shl, Shr, Sar };

/// Trapping division macro-ops (dst = dst op src).
enum class DivOp : uint8_t { Udiv, Sdiv, Urem, Srem };

/// Condition codes for the fused compare-and-set macro.
enum class Cc : uint8_t { E, Ne, B, Be, A, Ae, L, Le, G, Ge };

enum class InstrKind : uint8_t {
  MovImm,      ///< mov Dst, Imm
  MovRR,       ///< mov Dst, Src
  LoadAbs,     ///< mov Dst, [Imm]
  StoreAbs,    ///< mov [Imm], Src
  LoadIdx,     ///< mov Dst, [Imm + Src*4]
  StoreIdx,    ///< mov [Imm + Src*4], Src2
  LoadEsp,     ///< mov Dst, [esp + Imm]
  StoreEsp,    ///< mov [esp + Imm], Src
  Alu,         ///< AluOp Dst, Src
  Shift,       ///< ShiftOp Dst, Src (count)
  Div,         ///< DivOp Dst, Src (traps)
  Neg,         ///< neg Dst
  Not,         ///< not Dst
  SetZ,        ///< test Src, Src; sete Dst; movzx (Dst = Src == 0)
  CmpSet,      ///< cmp Src, Src2; setCC Dst; movzx
  TestJnz,     ///< test Src, Src; jnz Label
  Jmp,         ///< jmp Label
  Label,       ///< local label (Imm = id)
  CallDirect,  ///< call Name (pushes return address)
  TailJmp,     ///< jmp Name: tail call — the caller's frame is already
               ///< released and its return address is reused
  CallExternal,///< call to a runtime I/O stub: emits an external event
               ///< with NArgs arguments read from [esp+0..]
  SubEsp,      ///< sub esp, Imm (frame allocation)
  AddEsp,      ///< add esp, Imm (frame release)
  Ret,         ///< pop return address and jump
  Halt         ///< stop the machine; exit code in EAX
};

struct Instr {
  InstrKind K;
  Reg Dst = Reg::EAX;
  Reg Src = Reg::EAX;
  Reg Src2 = Reg::EAX;
  uint32_t Imm = 0;   ///< Immediate / absolute address / label id / disp.
  uint32_t NArgs = 0; ///< CallExternal.
  AluOp A = AluOp::Add;
  ShiftOp Sh = ShiftOp::Shl;
  DivOp D = DivOp::Udiv;
  Cc C = Cc::E;
  std::string Name;   ///< Call target.

  /// Renders in Intel-ish syntax.
  std::string str() const;
};

/// One assembled function.
struct AsmFunction {
  std::string Name;
  uint32_t FrameSize = 0; ///< SF(f) in bytes.
  std::vector<Instr> Code;
};

/// A laid-out global.
struct GlobalLayout {
  std::string Name;
  uint32_t Address = 0;
  uint32_t SizeBytes = 0;
  std::vector<uint32_t> Init;
};

/// The assembled program: globals with concrete addresses, functions, and
/// the metadata the driver needs (entry point, frame sizes).
struct Program {
  std::vector<GlobalLayout> Globals;
  std::vector<AsmFunction> Functions;
  std::vector<std::string> Externals;
  std::string EntryPoint = "main";
  uint32_t GlobalBase = 0x10000000;
  uint32_t GlobalSize = 0;

  const AsmFunction *findFunction(const std::string &Name) const;

  /// The frame-size metric of the assembled code: M(f) = SF(f) + 4. By
  /// construction it equals the Mach metric — asserted by the driver.
  StackMetric costMetric() const;

  /// Full assembly listing.
  std::string str() const;
};

/// Assembly generation from Mach (the paper's reimplemented last pass).
/// Mach-level TailCall instructions become frame-releasing jumps.
Program emitFromMach(const mach::Program &P);

} // namespace x86
} // namespace qcc

#endif // QCC_X86_ASM_H
