//===- x86/Machine.h - The ASM_sz finite-stack machine ----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable model of ASM_sz (paper section 3.2): the semantics is
/// parameterized by the stack size sz; the machine preallocates one
/// contiguous block of sz + 4 bytes (the +4 holds the return address of
/// the "caller" of main), runs the program with ESP confined to it, and
/// *goes wrong* — with a distinguished stack-overflow trap — if execution
/// needs more stack. Internal calls and returns are invisible here (no
/// call/return events exist at this level); I/O events remain observable,
/// which is what the end-to-end refinement statement (Theorem 1) is
/// phrased in.
///
/// The machine also keeps an ESP low-water mark. Reading it through
/// measure::StackMeter is this repo's substitute for the paper's
/// ptrace-based measurement tool.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_X86_MACHINE_H
#define QCC_X86_MACHINE_H

#include "events/Trace.h"
#include "events/TraceSink.h"
#include "x86/Asm.h"

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace qcc {
namespace x86 {

/// Default fuel for whole-program runs.
inline constexpr uint64_t DefaultFuel = 500'000'000;

/// Executes an assembled program against a finite stack of a given size.
class Machine {
public:
  /// \p StackSize is the paper's sz: the block is sz + 4 bytes.
  Machine(const Program &P, uint32_t StackSize);

  /// Runs from the entry point until halt, trap, or fuel exhaustion.
  Behavior run(uint64_t Fuel = DefaultFuel, const Supervisor *Sup = nullptr);

  /// Streaming variant: I/O events are delivered to \p Sink; only the
  /// outcome is returned.
  Outcome run(TraceSink &Sink, uint64_t Fuel = DefaultFuel,
              const Supervisor *Sup = nullptr);

  /// True if the last run trapped specifically on stack exhaustion.
  bool stackOverflowed() const { return Overflowed; }

  /// ESP at the entry of the entry function (stack top minus the pushed
  /// return address) — the measurement baseline.
  uint32_t baselineEsp() const { return StackTop - 4; }

  /// The lowest ESP observed during the last run.
  uint32_t minEsp() const { return MinEsp; }

  /// baselineEsp() - minEsp(): the measured stack consumption in bytes,
  /// exactly what the paper's ptrace tool reports.
  uint32_t measuredStackBytes() const { return baselineEsp() - MinEsp; }

private:
  struct Linked {
    std::vector<Instr> Code;
    std::map<std::string, uint32_t> FunctionStart;
  };

  void link();
  bool read32(uint32_t Addr, uint32_t &Out, std::string &Fault);
  bool write32(uint32_t Addr, uint32_t Value, std::string &Fault);
  bool setEsp(uint32_t NewEsp, std::string &Fault);
  SymId sym(const std::string &Name);

  const Program &P;
  uint32_t StackSize;
  uint32_t StackBase;
  uint32_t StackTop;

  Linked Image;
  std::vector<uint8_t> GlobalMem;
  std::vector<uint8_t> StackMem;
  uint32_t Regs[8] = {0};
  uint32_t Pc = 0;
  uint32_t MinEsp = 0;
  bool Overflowed = false;
  std::unordered_map<const std::string *, SymId> SymCache;
};

} // namespace x86
} // namespace qcc

#endif // QCC_X86_MACHINE_H
