//===- x86/Emit.cpp - Assembly generation from Mach -----------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reimplemented assembly-generation pass (paper section 3.2): Mach's
/// per-function frames are merged into the single preallocated stack
/// block. Frame layout within [esp, esp + SF(f)):
///
///   [esp + 0        .. 4*MaxOut)   outgoing argument area
///   [esp + 4*MaxOut .. SF(f))      spill slots
///   [esp + SF(f)]                  return address (pushed by `call`)
///   [esp + SF(f)+4 + 4*i]          incoming parameter i
///
/// Three-address Mach operations are expanded into two-address x86 form,
/// using EBP as the scratch for the dst == src2 hazard.
///
//===----------------------------------------------------------------------===//

#include "x86/Asm.h"

#include <cassert>

using namespace qcc;
using namespace qcc::x86;
namespace m = qcc::mach;

namespace {

Reg fromPReg(m::PReg R) { return static_cast<Reg>(static_cast<unsigned>(R)); }

class FunctionEmitter {
public:
  FunctionEmitter(const m::Function &F,
                  const std::map<std::string, uint32_t> &GlobalAddr,
                  const std::map<std::string, bool> &IsInternal)
      : F(F), GlobalAddr(GlobalAddr), IsInternal(IsInternal) {}

  AsmFunction run() {
    AsmFunction Out;
    Out.Name = F.Name;
    Out.FrameSize = F.frameSize();

    if (Out.FrameSize > 0)
      push({.K = InstrKind::SubEsp, .Imm = Out.FrameSize});
    for (const m::Instr &I : F.Code)
      emit(I);
    Out.Code = std::move(Code);
    return Out;
  }

private:
  void push(Instr I) { Code.push_back(std::move(I)); }

  uint32_t spillOffset(uint32_t Slot) const {
    return 4 * F.MaxOutgoing + 4 * Slot;
  }
  uint32_t paramOffset(uint32_t Index) const {
    return F.frameSize() + 4 + 4 * Index;
  }
  uint32_t addrOf(const std::string &Name) const {
    auto It = GlobalAddr.find(Name);
    assert(It != GlobalAddr.end() && "verifier guarantees bound globals");
    return It->second;
  }

  void movRR(Reg Dst, Reg Src) {
    if (Dst != Src)
      push({.K = InstrKind::MovRR, .Dst = Dst, .Src = Src});
  }

  /// Expands dst = s1 op s2 into two-address form. \p Commutative allows
  /// operand swapping for the dst == s2 case; otherwise EBP stages s2.
  template <typename EmitOp>
  void twoAddress(Reg Dst, Reg S1, Reg S2, bool Commutative, EmitOp Op) {
    if (Dst == S1) {
      Op(Dst, S2);
      return;
    }
    if (Dst == S2) {
      if (Commutative) {
        Op(Dst, S1);
        return;
      }
      movRR(Reg::EBP, S2);
      movRR(Dst, S1);
      Op(Dst, Reg::EBP);
      return;
    }
    movRR(Dst, S1);
    Op(Dst, S2);
  }

  void emitBinary(const m::Instr &I) {
    Reg D = fromPReg(I.Dst), A = fromPReg(I.Src1), B = fromPReg(I.Src2);
    using m::BinOp;
    switch (I.B) {
    case BinOp::Add:
    case BinOp::Mul:
    case BinOp::And:
    case BinOp::Or:
    case BinOp::Xor:
    case BinOp::Sub: {
      AluOp Op;
      bool Comm = true;
      switch (I.B) {
      case BinOp::Add: Op = AluOp::Add; break;
      case BinOp::Mul: Op = AluOp::Imul; break;
      case BinOp::And: Op = AluOp::And; break;
      case BinOp::Or: Op = AluOp::Or; break;
      case BinOp::Xor: Op = AluOp::Xor; break;
      default:
        Op = AluOp::Sub;
        Comm = false;
        break;
      }
      twoAddress(D, A, B, Comm, [this, Op](Reg Dst, Reg Src) {
        push({.K = InstrKind::Alu, .Dst = Dst, .Src = Src, .A = Op});
      });
      return;
    }
    case BinOp::Shl:
    case BinOp::ShrU:
    case BinOp::ShrS: {
      ShiftOp Op = I.B == BinOp::Shl    ? ShiftOp::Shl
                   : I.B == BinOp::ShrU ? ShiftOp::Shr
                                        : ShiftOp::Sar;
      twoAddress(D, A, B, /*Commutative=*/false,
                 [this, Op](Reg Dst, Reg Src) {
                   push({.K = InstrKind::Shift, .Dst = Dst, .Src = Src,
                         .Sh = Op});
                 });
      return;
    }
    case BinOp::DivU:
    case BinOp::DivS:
    case BinOp::ModU:
    case BinOp::ModS: {
      DivOp Op = I.B == BinOp::DivU   ? DivOp::Udiv
                 : I.B == BinOp::DivS ? DivOp::Sdiv
                 : I.B == BinOp::ModU ? DivOp::Urem
                                      : DivOp::Srem;
      twoAddress(D, A, B, /*Commutative=*/false,
                 [this, Op](Reg Dst, Reg Src) {
                   push({.K = InstrKind::Div, .Dst = Dst, .Src = Src,
                         .D = Op});
                 });
      return;
    }
    case BinOp::Eq: case BinOp::Ne:
    case BinOp::LtU: case BinOp::LeU: case BinOp::GtU: case BinOp::GeU:
    case BinOp::LtS: case BinOp::LeS: case BinOp::GtS: case BinOp::GeS: {
      Cc C;
      switch (I.B) {
      case BinOp::Eq: C = Cc::E; break;
      case BinOp::Ne: C = Cc::Ne; break;
      case BinOp::LtU: C = Cc::B; break;
      case BinOp::LeU: C = Cc::Be; break;
      case BinOp::GtU: C = Cc::A; break;
      case BinOp::GeU: C = Cc::Ae; break;
      case BinOp::LtS: C = Cc::L; break;
      case BinOp::LeS: C = Cc::Le; break;
      case BinOp::GtS: C = Cc::G; break;
      default: C = Cc::Ge; break;
      }
      // The fused compare-and-set reads both sources before writing.
      push({.K = InstrKind::CmpSet, .Dst = D, .Src = A, .Src2 = B, .C = C});
      return;
    }
    }
  }

  void emit(const m::Instr &I) {
    switch (I.K) {
    case m::InstrKind::MovImm:
      push({.K = InstrKind::MovImm, .Dst = fromPReg(I.Dst), .Imm = I.Imm});
      return;
    case m::InstrKind::Mov:
      movRR(fromPReg(I.Dst), fromPReg(I.Src1));
      return;
    case m::InstrKind::Unary: {
      Reg D = fromPReg(I.Dst), S = fromPReg(I.Src1);
      switch (I.U) {
      case m::UnOp::Neg:
        movRR(D, S);
        push({.K = InstrKind::Neg, .Dst = D});
        return;
      case m::UnOp::BitNot:
        movRR(D, S);
        push({.K = InstrKind::Not, .Dst = D});
        return;
      case m::UnOp::BoolNot:
        push({.K = InstrKind::SetZ, .Dst = D, .Src = S});
        return;
      }
      return;
    }
    case m::InstrKind::Binary:
      emitBinary(I);
      return;
    case m::InstrKind::GlobLoad:
      push({.K = InstrKind::LoadAbs, .Dst = fromPReg(I.Dst),
            .Imm = addrOf(I.Name)});
      return;
    case m::InstrKind::GlobStore:
      push({.K = InstrKind::StoreAbs, .Src = fromPReg(I.Src1),
            .Imm = addrOf(I.Name)});
      return;
    case m::InstrKind::ArrayLoad:
      push({.K = InstrKind::LoadIdx, .Dst = fromPReg(I.Dst),
            .Src = fromPReg(I.Src1), .Imm = addrOf(I.Name)});
      return;
    case m::InstrKind::ArrayStore:
      push({.K = InstrKind::StoreIdx, .Src = fromPReg(I.Src1),
            .Src2 = fromPReg(I.Src2), .Imm = addrOf(I.Name)});
      return;
    case m::InstrKind::GetStack:
      push({.K = InstrKind::LoadEsp, .Dst = fromPReg(I.Dst),
            .Imm = spillOffset(I.Index)});
      return;
    case m::InstrKind::SetStack:
      push({.K = InstrKind::StoreEsp, .Src = fromPReg(I.Src1),
            .Imm = spillOffset(I.Index)});
      return;
    case m::InstrKind::GetParam:
      push({.K = InstrKind::LoadEsp, .Dst = fromPReg(I.Dst),
            .Imm = paramOffset(I.Index)});
      return;
    case m::InstrKind::SetOutgoing:
      push({.K = InstrKind::StoreEsp, .Src = fromPReg(I.Src1),
            .Imm = 4 * I.Index});
      return;
    case m::InstrKind::TailCall: {
      // Copy the outgoing arguments over this frame's incoming parameter
      // area (disjoint regions: the destination sits above the return
      // address), release the frame, and jump. The callee will return
      // straight to this frame's caller.
      for (uint32_t A = 0; A != I.NArgs; ++A) {
        push({.K = InstrKind::LoadEsp, .Dst = Reg::EBP, .Imm = 4 * A});
        push({.K = InstrKind::StoreEsp, .Src = Reg::EBP,
              .Imm = paramOffset(A)});
      }
      if (F.frameSize() > 0)
        push({.K = InstrKind::AddEsp, .Imm = F.frameSize()});
      Instr J;
      J.K = InstrKind::TailJmp;
      J.Name = I.Name;
      push(std::move(J));
      return;
    }
    case m::InstrKind::Call: {
      auto It = IsInternal.find(I.Name);
      bool Internal = It != IsInternal.end() && It->second;
      Instr C;
      C.K = Internal ? InstrKind::CallDirect : InstrKind::CallExternal;
      C.Name = I.Name;
      C.NArgs = I.NArgs;
      push(std::move(C));
      return;
    }
    case m::InstrKind::Label:
      push({.K = InstrKind::Label, .Imm = I.Index});
      return;
    case m::InstrKind::Goto:
      push({.K = InstrKind::Jmp, .Imm = I.Index});
      return;
    case m::InstrKind::Brnz:
      push({.K = InstrKind::TestJnz, .Src = fromPReg(I.Src1),
            .Imm = I.Index});
      return;
    case m::InstrKind::Return:
      if (F.frameSize() > 0)
        push({.K = InstrKind::AddEsp, .Imm = F.frameSize()});
      push({.K = InstrKind::Ret});
      return;
    }
  }

  const m::Function &F;
  const std::map<std::string, uint32_t> &GlobalAddr;
  const std::map<std::string, bool> &IsInternal;
  std::vector<Instr> Code;
};

} // namespace

Program qcc::x86::emitFromMach(const m::Program &P) {
  Program Out;
  Out.EntryPoint = P.EntryPoint;

  // Lay out globals contiguously, 4-byte aligned (all data is words).
  uint32_t Offset = 0;
  for (const m::GlobalVar &G : P.Globals) {
    GlobalLayout L;
    L.Name = G.Name;
    L.Address = Out.GlobalBase + Offset;
    L.SizeBytes = 4 * G.Size;
    L.Init = G.Init;
    L.Init.resize(G.Size, 0);
    Offset += L.SizeBytes;
    Out.Globals.push_back(std::move(L));
  }
  Out.GlobalSize = Offset;

  std::map<std::string, uint32_t> GlobalAddr;
  for (const GlobalLayout &G : Out.Globals)
    GlobalAddr[G.Name] = G.Address;
  std::map<std::string, bool> IsInternal;
  for (const m::Function &F : P.Functions)
    IsInternal[F.Name] = true;
  for (const m::ExternalDecl &E : P.Externals) {
    IsInternal[E.Name] = false;
    Out.Externals.push_back(E.Name);
  }

  for (const m::Function &F : P.Functions)
    Out.Functions.push_back(
        FunctionEmitter(F, GlobalAddr, IsInternal).run());
  return Out;
}
