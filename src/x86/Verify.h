//===- x86/Verify.h - Assembly well-formedness checks -----------*- C++-*-===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness of assembled programs, covering exactly the
/// preconditions the ASM_sz machine's linker asserts and its memory image
/// construction indexes by: every local branch label is defined in its
/// function, every direct/tail call target is a defined function, and the
/// global data layout is self-consistent (aligned addresses inside
/// [GlobalBase, GlobalBase + GlobalSize), initializers within their
/// globals, no overlap with the stack region, bounded total size). The
/// driver runs this after assembly emission, so x86::Machine may link and
/// image memory without further checks.
///
//===----------------------------------------------------------------------===//

#ifndef QCC_X86_VERIFY_H
#define QCC_X86_VERIFY_H

#include "support/Diagnostics.h"
#include "x86/Asm.h"

namespace qcc {
namespace x86 {

/// The largest global data image a verified program may request; keeps a
/// hostile (or corrupted) layout from turning machine construction into a
/// multi-gigabyte allocation.
inline constexpr uint32_t MaxGlobalBytes = 1u << 26;

/// Checks \p P; reports problems to \p Diags. Returns true when no errors
/// were found.
bool verifyProgram(const Program &P, DiagnosticEngine &Diags);

} // namespace x86
} // namespace qcc

#endif // QCC_X86_VERIFY_H
