//===- x86/Machine.cpp - The ASM_sz finite-stack machine ------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "x86/Machine.h"

#include "events/SymbolTable.h"

#include <cassert>
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>

using namespace qcc;
using namespace qcc::x86;

namespace {
/// The sentinel "return address of the caller of main".
constexpr uint32_t HaltAddress = 0xfffffff0u;
} // namespace

Machine::Machine(const Program &P, uint32_t StackSize)
    : P(P), StackSize(StackSize) {
  StackTop = 0x7fff0000u;
  StackBase = StackTop - (StackSize + 4);
  GlobalMem.assign(P.GlobalSize, 0);
  for (const GlobalLayout &G : P.Globals) {
    uint32_t Off = G.Address - P.GlobalBase;
    for (size_t I = 0; I != G.Init.size(); ++I)
      std::memcpy(&GlobalMem[Off + 4 * I], &G.Init[I], 4);
  }
  StackMem.assign(StackSize + 4, 0);
  link();
}

void Machine::link() {
  // First pass: function start offsets.
  uint32_t Offset = 0;
  for (const AsmFunction &F : P.Functions) {
    Image.FunctionStart[F.Name] = Offset;
    Offset += static_cast<uint32_t>(F.Code.size());
  }
  // Second pass: copy code, resolving local labels and call targets to
  // absolute instruction indices (kept in Imm).
  for (const AsmFunction &F : P.Functions) {
    uint32_t Start = Image.FunctionStart[F.Name];
    std::map<uint32_t, uint32_t> Local;
    for (uint32_t I = 0; I != F.Code.size(); ++I)
      if (F.Code[I].K == InstrKind::Label)
        Local[F.Code[I].Imm] = Start + I;
    for (const Instr &I : F.Code) {
      Instr Copy = I;
      if (I.K == InstrKind::Jmp || I.K == InstrKind::TestJnz) {
        auto It = Local.find(I.Imm);
        assert(It != Local.end() && "unresolved local label");
        Copy.Imm = It->second;
      } else if (I.K == InstrKind::CallDirect ||
                 I.K == InstrKind::TailJmp) {
        auto It = Image.FunctionStart.find(I.Name);
        assert(It != Image.FunctionStart.end() && "unresolved call target");
        Copy.Imm = It->second;
      }
      Image.Code.push_back(std::move(Copy));
    }
  }
}

bool Machine::read32(uint32_t Addr, uint32_t &Out, std::string &Fault) {
  if (Addr % 4 != 0) {
    Fault = "unaligned access";
    return false;
  }
  if (Addr >= P.GlobalBase && Addr + 4 <= P.GlobalBase + P.GlobalSize) {
    std::memcpy(&Out, &GlobalMem[Addr - P.GlobalBase], 4);
    return true;
  }
  if (Addr >= StackBase && Addr + 4 <= StackTop) {
    std::memcpy(&Out, &StackMem[Addr - StackBase], 4);
    return true;
  }
  if (Addr < StackBase && StackBase - Addr <= 65536) {
    Overflowed = true;
    Fault = "stack overflow";
    return false;
  }
  char Buf[64];
  snprintf(Buf, sizeof(Buf), "segmentation fault (read 0x%x)", Addr);
  Fault = Buf;
  return false;
}

bool Machine::write32(uint32_t Addr, uint32_t Value, std::string &Fault) {
  if (Addr % 4 != 0) {
    Fault = "unaligned access";
    return false;
  }
  if (Addr >= P.GlobalBase && Addr + 4 <= P.GlobalBase + P.GlobalSize) {
    std::memcpy(&GlobalMem[Addr - P.GlobalBase], &Value, 4);
    return true;
  }
  if (Addr >= StackBase && Addr + 4 <= StackTop) {
    std::memcpy(&StackMem[Addr - StackBase], &Value, 4);
    return true;
  }
  if (Addr < StackBase && StackBase - Addr <= 65536) {
    Overflowed = true;
    Fault = "stack overflow";
    return false;
  }
  char Buf[64];
  snprintf(Buf, sizeof(Buf), "segmentation fault (write 0x%x)", Addr);
  Fault = Buf;
  return false;
}

bool Machine::setEsp(uint32_t NewEsp, std::string &Fault) {
  // Moving ESP below the preallocated block is the overflow trap: the
  // frame being reserved does not fit in the remaining sz bytes.
  if (NewEsp < StackBase) {
    Overflowed = true;
    Fault = "stack overflow";
    return false;
  }
  if (NewEsp > StackTop) {
    Fault = "stack underflow";
    return false;
  }
  Regs[static_cast<unsigned>(Reg::ESP)] = NewEsp;
  MinEsp = std::min(MinEsp, NewEsp);
  return true;
}

SymId Machine::sym(const std::string &Name) {
  auto [It, New] = SymCache.try_emplace(&Name, 0);
  if (New)
    It->second = SymbolTable::global().intern(Name);
  return It->second;
}

Behavior Machine::run(uint64_t Fuel, const Supervisor *Sup) {
  RecordingSink R;
  return run(R, Fuel, Sup).intoBehavior(std::move(R.Events));
}

Outcome Machine::run(TraceSink &Sink, uint64_t Fuel, const Supervisor *Sup) {
  Overflowed = false;
  for (uint32_t &R : Regs)
    R = 0;
  // Re-image memory so repeated runs are independent.
  std::fill(GlobalMem.begin(), GlobalMem.end(), 0);
  for (const GlobalLayout &G : P.Globals) {
    uint32_t Off = G.Address - P.GlobalBase;
    for (size_t I = 0; I != G.Init.size(); ++I)
      std::memcpy(&GlobalMem[Off + 4 * I], &G.Init[I], 4);
  }
  std::fill(StackMem.begin(), StackMem.end(), 0);

  auto RegRef = [this](Reg R) -> uint32_t & {
    return Regs[static_cast<unsigned>(R)];
  };
  uint32_t &Esp = RegRef(Reg::ESP);
  Esp = StackTop;
  MinEsp = StackTop;

  auto Fail = [this](const std::string &Reason) {
    return Outcome::fails(Reason + " [pc " + std::to_string(Pc) + ": " +
                          Image.Code[std::min<size_t>(Pc,
                                                      Image.Code.size() - 1)]
                              .str() +
                          "]");
  };

  // Startup: call the entry point with the sentinel return address.
  auto EntryIt = Image.FunctionStart.find(P.EntryPoint);
  if (EntryIt == Image.FunctionStart.end())
    return Fail("entry point is not defined");
  {
    std::string Fault;
    if (!setEsp(Esp - 4, Fault))
      return Fail(Fault);
    if (!write32(Esp, HaltAddress, Fault))
      return Fail(Fault);
  }
  Pc = EntryIt->second;

  uint64_t Steps = 0;
  for (;;) {
    if (++Steps > Fuel)
      return Outcome::exhausted();
    if (Supervisor::shouldPoll(Steps, Sup))
      return Outcome::stopped(Sup->cause());
    if (Pc >= Image.Code.size())
      return Fail("instruction pointer out of range");
    const Instr &I = Image.Code[Pc];
    std::string Fault;

    switch (I.K) {
    case InstrKind::MovImm:
      RegRef(I.Dst) = I.Imm;
      break;
    case InstrKind::MovRR:
      RegRef(I.Dst) = RegRef(I.Src);
      break;
    case InstrKind::LoadAbs:
      if (!read32(I.Imm, RegRef(I.Dst), Fault))
        return Fail(Fault);
      break;
    case InstrKind::StoreAbs:
      if (!write32(I.Imm, RegRef(I.Src), Fault))
        return Fail(Fault);
      break;
    case InstrKind::LoadIdx:
      if (!read32(I.Imm + RegRef(I.Src) * 4, RegRef(I.Dst), Fault))
        return Fail(Fault);
      break;
    case InstrKind::StoreIdx:
      if (!write32(I.Imm + RegRef(I.Src) * 4, RegRef(I.Src2), Fault))
        return Fail(Fault);
      break;
    case InstrKind::LoadEsp:
      if (!read32(Esp + I.Imm, RegRef(I.Dst), Fault))
        return Fail(Fault);
      break;
    case InstrKind::StoreEsp:
      if (!write32(Esp + I.Imm, RegRef(I.Src), Fault))
        return Fail(Fault);
      break;
    case InstrKind::Alu: {
      uint32_t &D = RegRef(I.Dst);
      uint32_t S = RegRef(I.Src);
      switch (I.A) {
      case AluOp::Add: D += S; break;
      case AluOp::Sub: D -= S; break;
      case AluOp::Imul: D *= S; break;
      case AluOp::And: D &= S; break;
      case AluOp::Or: D |= S; break;
      case AluOp::Xor: D ^= S; break;
      }
      break;
    }
    case InstrKind::Shift: {
      uint32_t &D = RegRef(I.Dst);
      uint32_t C = RegRef(I.Src) & 31;
      switch (I.Sh) {
      case ShiftOp::Shl: D <<= C; break;
      case ShiftOp::Shr: D >>= C; break;
      case ShiftOp::Sar:
        D = static_cast<uint32_t>(static_cast<int32_t>(D) >> C);
        break;
      }
      break;
    }
    case InstrKind::Div: {
      uint32_t &D = RegRef(I.Dst);
      uint32_t S = RegRef(I.Src);
      int32_t SD = static_cast<int32_t>(D), SS = static_cast<int32_t>(S);
      bool SignedOp = I.D == DivOp::Sdiv || I.D == DivOp::Srem;
      if (S == 0 ||
          (SignedOp && SD == std::numeric_limits<int32_t>::min() &&
           SS == -1))
        return Fail("division trap");
      switch (I.D) {
      case DivOp::Udiv: D = D / S; break;
      case DivOp::Urem: D = D % S; break;
      case DivOp::Sdiv: D = static_cast<uint32_t>(SD / SS); break;
      case DivOp::Srem: D = static_cast<uint32_t>(SD % SS); break;
      }
      break;
    }
    case InstrKind::Neg:
      RegRef(I.Dst) = 0u - RegRef(I.Dst);
      break;
    case InstrKind::Not:
      RegRef(I.Dst) = ~RegRef(I.Dst);
      break;
    case InstrKind::SetZ:
      RegRef(I.Dst) = RegRef(I.Src) == 0 ? 1u : 0u;
      break;
    case InstrKind::CmpSet: {
      uint32_t A = RegRef(I.Src), B = RegRef(I.Src2);
      int32_t SA = static_cast<int32_t>(A), SB = static_cast<int32_t>(B);
      bool R = false;
      switch (I.C) {
      case Cc::E: R = A == B; break;
      case Cc::Ne: R = A != B; break;
      case Cc::B: R = A < B; break;
      case Cc::Be: R = A <= B; break;
      case Cc::A: R = A > B; break;
      case Cc::Ae: R = A >= B; break;
      case Cc::L: R = SA < SB; break;
      case Cc::Le: R = SA <= SB; break;
      case Cc::G: R = SA > SB; break;
      case Cc::Ge: R = SA >= SB; break;
      }
      RegRef(I.Dst) = R ? 1u : 0u;
      break;
    }
    case InstrKind::TestJnz:
      if (RegRef(I.Src) != 0) {
        Pc = I.Imm;
        continue;
      }
      break;
    case InstrKind::Jmp:
      Pc = I.Imm;
      continue;
    case InstrKind::Label:
      break;
    case InstrKind::CallDirect: {
      if (!setEsp(Esp - 4, Fault))
        return Fail(Fault);
      if (!write32(Esp, Pc + 1, Fault))
        return Fail(Fault);
      Pc = I.Imm;
      continue;
    }
    case InstrKind::TailJmp:
      // The frame was already released; the return address on top of the
      // stack belongs to the original caller.
      Pc = I.Imm;
      continue;
    case InstrKind::CallExternal: {
      // The runtime stub reads its arguments from the outgoing area and
      // produces the I/O event; result 0 in EAX by convention.
      std::vector<int32_t> Args;
      for (uint32_t A = 0; A != I.NArgs; ++A) {
        uint32_t V;
        if (!read32(Esp + 4 * A, V, Fault))
          return Fail(Fault);
        Args.push_back(static_cast<int32_t>(V));
      }
      Sink.onEvent(Event::external(
          sym(I.Name), SymbolTable::global().internArgs(Args), 0));
      RegRef(Reg::EAX) = 0;
      break;
    }
    case InstrKind::SubEsp:
      if (!setEsp(Esp - I.Imm, Fault))
        return Fail(Fault);
      break;
    case InstrKind::AddEsp:
      if (!setEsp(Esp + I.Imm, Fault))
        return Fail(Fault);
      break;
    case InstrKind::Ret: {
      uint32_t Target;
      if (!read32(Esp, Target, Fault))
        return Fail(Fault);
      if (!setEsp(Esp + 4, Fault))
        return Fail(Fault);
      if (Target == HaltAddress)
        return Outcome::converges(static_cast<int32_t>(RegRef(Reg::EAX)));
      Pc = Target;
      continue;
    }
    case InstrKind::Halt:
      return Outcome::converges(static_cast<int32_t>(RegRef(Reg::EAX)));
    }
    ++Pc;
  }
}
