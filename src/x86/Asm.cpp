//===- x86/Asm.cpp - x86-32 subset assembly -------------------------------===//
//
// Part of qcc, a reproduction of "End-to-End Verification of Stack-Space
// Bounds for C Programs" (PLDI 2014).
//
//===----------------------------------------------------------------------===//

#include "x86/Asm.h"

using namespace qcc;
using namespace qcc::x86;

const char *qcc::x86::regName(Reg R) {
  switch (R) {
  case Reg::EAX: return "eax";
  case Reg::EBX: return "ebx";
  case Reg::ECX: return "ecx";
  case Reg::EDX: return "edx";
  case Reg::ESI: return "esi";
  case Reg::EDI: return "edi";
  case Reg::ESP: return "esp";
  case Reg::EBP: return "ebp";
  }
  return "?";
}

namespace {

const char *aluName(AluOp Op) {
  switch (Op) {
  case AluOp::Add: return "add";
  case AluOp::Sub: return "sub";
  case AluOp::Imul: return "imul";
  case AluOp::And: return "and";
  case AluOp::Or: return "or";
  case AluOp::Xor: return "xor";
  }
  return "?";
}

const char *shiftName(ShiftOp Op) {
  switch (Op) {
  case ShiftOp::Shl: return "shl";
  case ShiftOp::Shr: return "shr";
  case ShiftOp::Sar: return "sar";
  }
  return "?";
}

const char *divName(DivOp Op) {
  switch (Op) {
  case DivOp::Udiv: return "udiv";
  case DivOp::Sdiv: return "sdiv";
  case DivOp::Urem: return "urem";
  case DivOp::Srem: return "srem";
  }
  return "?";
}

const char *ccName(Cc C) {
  switch (C) {
  case Cc::E: return "e";
  case Cc::Ne: return "ne";
  case Cc::B: return "b";
  case Cc::Be: return "be";
  case Cc::A: return "a";
  case Cc::Ae: return "ae";
  case Cc::L: return "l";
  case Cc::Le: return "le";
  case Cc::G: return "g";
  case Cc::Ge: return "ge";
  }
  return "?";
}

std::string hex(uint32_t V) {
  char Buf[16];
  snprintf(Buf, sizeof(Buf), "0x%x", V);
  return Buf;
}

} // namespace

std::string Instr::str() const {
  auto R = [](Reg X) { return std::string(regName(X)); };
  switch (K) {
  case InstrKind::MovImm:
    return "mov " + R(Dst) + ", " + std::to_string(Imm);
  case InstrKind::MovRR:
    return "mov " + R(Dst) + ", " + R(Src);
  case InstrKind::LoadAbs:
    return "mov " + R(Dst) + ", dword [" + hex(Imm) + "]";
  case InstrKind::StoreAbs:
    return "mov dword [" + hex(Imm) + "], " + R(Src);
  case InstrKind::LoadIdx:
    return "mov " + R(Dst) + ", dword [" + hex(Imm) + " + " + R(Src) +
           "*4]";
  case InstrKind::StoreIdx:
    return "mov dword [" + hex(Imm) + " + " + R(Src) + "*4], " + R(Src2);
  case InstrKind::LoadEsp:
    return "mov " + R(Dst) + ", dword [esp + " + std::to_string(Imm) + "]";
  case InstrKind::StoreEsp:
    return "mov dword [esp + " + std::to_string(Imm) + "], " + R(Src);
  case InstrKind::Alu:
    return std::string(aluName(A)) + " " + R(Dst) + ", " + R(Src);
  case InstrKind::Shift:
    return std::string(shiftName(Sh)) + " " + R(Dst) + ", " + R(Src);
  case InstrKind::Div:
    return std::string(divName(D)) + " " + R(Dst) + ", " + R(Src);
  case InstrKind::Neg:
    return "neg " + R(Dst);
  case InstrKind::Not:
    return "not " + R(Dst);
  case InstrKind::SetZ:
    return "setz " + R(Dst) + ", " + R(Src);
  case InstrKind::CmpSet:
    return std::string("set") + ccName(C) + " " + R(Dst) + ", " + R(Src) +
           ", " + R(Src2);
  case InstrKind::TestJnz:
    return "test " + R(Src) + ", " + R(Src) + "; jnz .L" +
           std::to_string(Imm);
  case InstrKind::Jmp:
    return "jmp .L" + std::to_string(Imm);
  case InstrKind::Label:
    return ".L" + std::to_string(Imm) + ":";
  case InstrKind::CallDirect:
    return "call " + Name;
  case InstrKind::TailJmp:
    return "jmp " + Name + "  ; tail call";
  case InstrKind::CallExternal:
    return "call " + Name + "@ext";
  case InstrKind::SubEsp:
    return "sub esp, " + std::to_string(Imm);
  case InstrKind::AddEsp:
    return "add esp, " + std::to_string(Imm);
  case InstrKind::Ret:
    return "ret";
  case InstrKind::Halt:
    return "hlt";
  }
  return "<bad instr>";
}

const AsmFunction *Program::findFunction(const std::string &Name) const {
  for (const AsmFunction &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

StackMetric Program::costMetric() const {
  StackMetric M;
  for (const AsmFunction &F : Functions)
    M.setCost(F.Name, F.FrameSize + 4);
  return M;
}

std::string Program::str() const {
  std::string Out;
  Out += "; qcc assembled program, entry " + EntryPoint + "\n";
  Out += "section .data  ; base " + hex(GlobalBase) + "\n";
  for (const GlobalLayout &G : Globals) {
    Out += G.Name + ":  ; " + hex(G.Address) + ", " +
           std::to_string(G.SizeBytes) + " bytes\n";
    Out += "  dd";
    for (size_t I = 0; I != G.Init.size(); ++I)
      Out += (I ? ", " : " ") + std::to_string(G.Init[I]);
    Out += "\n";
  }
  Out += "section .text\n";
  for (const AsmFunction &F : Functions) {
    Out += F.Name + ":  ; frame " + std::to_string(F.FrameSize) +
           " bytes\n";
    for (const Instr &I : F.Code) {
      Out += I.K == InstrKind::Label ? "" : "  ";
      Out += I.str() + "\n";
    }
  }
  return Out;
}
